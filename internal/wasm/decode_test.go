package wasm_test

import (
	"bytes"
	"errors"
	"testing"

	"waran/internal/wasm"
	"waran/internal/wat"
)

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := wasm.Decode([]byte("not a wasm module")); !errors.Is(err, wasm.ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := wasm.Decode(nil); !errors.Is(err, wasm.ErrBadMagic) {
		t.Fatalf("empty input: want ErrBadMagic, got %v", err)
	}
	// Right magic, wrong version.
	bad := []byte{0x00, 0x61, 0x73, 0x6D, 0x02, 0x00, 0x00, 0x00}
	if _, err := wasm.Decode(bad); !errors.Is(err, wasm.ErrBadMagic) {
		t.Fatalf("bad version: want ErrBadMagic, got %v", err)
	}
}

const fullFeatureWAT = `(module
  (type $binop (func (param i32 i32) (result i32)))
  (import "env" "host" (func $host (param i32) (result i32)))
  (memory (export "memory") 2 8)
  (table 4 funcref)
  (global $g (mut i64) (i64.const -5))
  (global $c f32 (f32.const 1.5))
  (export "g" (global $g))
  (elem (i32.const 1) $add $sub)
  (data (i32.const 16) "hello\00world")
  (func $add (type $binop) local.get 0 local.get 1 i32.add)
  (func $sub (type $binop) local.get 0 local.get 1 i32.sub)
  (func (export "run") (param i32) (result i32)
    (local $x i32) (local $y f64)
    local.get 0 call $host)
  (start $init)
  (func $init (global.set $g (i64.const 7)))
)`

// TestEncodeDecodeRoundTrip checks that encoding a module and decoding the
// result preserves every section.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	m1, err := wat.Compile(fullFeatureWAT)
	if err != nil {
		t.Fatal(err)
	}
	if err := wasm.Validate(m1); err != nil {
		t.Fatal(err)
	}
	bin1, err := wasm.Encode(m1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := wasm.Decode(bin1)
	if err != nil {
		t.Fatalf("decode of encoded module: %v", err)
	}
	if err := wasm.Validate(m2); err != nil {
		t.Fatalf("re-validate: %v", err)
	}
	bin2, err := wasm.Encode(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin1, bin2) {
		t.Fatal("encode(decode(encode(m))) differs from encode(m)")
	}
	// Structural spot checks.
	if len(m2.Types) != len(m1.Types) || len(m2.Funcs) != len(m1.Funcs) {
		t.Fatalf("type/func count mismatch: %d/%d vs %d/%d",
			len(m2.Types), len(m2.Funcs), len(m1.Types), len(m1.Funcs))
	}
	if len(m2.Imports) != 1 || m2.Imports[0].Module != "env" {
		t.Fatalf("imports: %+v", m2.Imports)
	}
	if len(m2.Datas) != 1 || string(m2.Datas[0].Bytes) != "hello\x00world" {
		t.Fatalf("data: %+v", m2.Datas)
	}
	if m2.Start == nil {
		t.Fatal("start lost")
	}
	if len(m2.Elems) != 1 || len(m2.Elems[0].Funcs) != 2 {
		t.Fatalf("elems: %+v", m2.Elems)
	}
}

// TestDecodedModuleRuns instantiates the decoded binary and exercises it.
func TestDecodedModuleRuns(t *testing.T) {
	bin, err := wat.CompileToBinary(fullFeatureWAT)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	imports := wasm.Imports{"env": {"host": &wasm.HostFunc{
		Name: "host",
		Type: wasm.FuncType{Params: []wasm.ValType{wasm.ValI32}, Results: []wasm.ValType{wasm.ValI32}},
		Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
			// Read the data segment through the sandbox boundary.
			b, err := ctx.Memory().Read(16, 5)
			if err != nil {
				return nil, err
			}
			if string(b) != "hello" {
				t.Errorf("data segment = %q", b)
			}
			return []uint64{args[0] + 1}, nil
		},
	}}}
	in, err := cm.Instantiate(imports, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Call("run", 41)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Fatalf("run = %d", res[0])
	}
	// Start function must have executed.
	if v, _ := in.GlobalValue("g"); int64(v) != 7 {
		t.Fatalf("global after start = %d", int64(v))
	}
}

func TestDecodeTruncatedSections(t *testing.T) {
	bin, err := wat.CompileToBinary(fullFeatureWAT)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for i := 8; i < len(bin); i += 7 {
		if _, err := wasm.Decode(bin[:i]); err == nil {
			// Some prefixes may be valid modules (ending on a section
			// boundary); decode deeper correctness via Validate.
			m, _ := wasm.Decode(bin[:i])
			if m != nil && len(m.Funcs) != len(m.Codes) {
				t.Fatalf("prefix %d produced inconsistent module", i)
			}
		}
	}
}

func TestDecodeRejectsSectionOrder(t *testing.T) {
	// Build: type section after function section.
	bin := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
		3, 2, 1, 0, // function section: one func of type 0
		1, 4, 1, 0x60, 0, 0, // type section (out of order)
	}
	if _, err := wasm.Decode(bin); err == nil {
		t.Fatal("out-of-order sections accepted")
	}
}

func TestDecodeRejectsDuplicateExports(t *testing.T) {
	src := `(module (memory 1) (func))`
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m.Exports = []wasm.Export{
		{Name: "x", Kind: wasm.ExternFunc, Index: 0},
		{Name: "x", Kind: wasm.ExternMemory, Index: 0},
	}
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wasm.Decode(bin); err == nil {
		t.Fatal("duplicate export names accepted")
	}
}

func TestDecodeRejectsCodeCountMismatch(t *testing.T) {
	// Function section declares one function, no code section.
	bin := []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
		1, 4, 1, 0x60, 0, 0, // type section
		3, 2, 1, 0, // function section
	}
	if _, err := wasm.Decode(bin); err == nil {
		t.Fatal("missing code section accepted")
	}
}

func TestOpcodeNames(t *testing.T) {
	if got := wasm.OpcodeName(wasm.OpI32Add); got != "i32.add" {
		t.Fatalf("OpcodeName = %q", got)
	}
	if got := wasm.OpcodeName(0xFE); got == "" {
		t.Fatal("unknown opcode name empty")
	}
}

func TestFuncTypeString(t *testing.T) {
	ft := wasm.FuncType{
		Params:  []wasm.ValType{wasm.ValI32, wasm.ValF64},
		Results: []wasm.ValType{wasm.ValI64},
	}
	if got := ft.String(); got != "(i32 f64) -> (i64)" {
		t.Fatalf("String = %q", got)
	}
}

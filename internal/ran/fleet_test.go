package ran

import (
	"testing"
	"time"
)

const testSlotDur = time.Millisecond

func TestFleetConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  FleetConfig
		ok   bool
	}{
		{"valid", FleetConfig{UEs: 100, SliceIDs: []uint32{1}}, true},
		{"zero ues", FleetConfig{SliceIDs: []uint32{1}}, false},
		{"negative ues", FleetConfig{UEs: -1, SliceIDs: []uint32{1}}, false},
		{"no slices", FleetConfig{UEs: 10}, false},
		{"window too big", FleetConfig{UEs: 10, ActiveK: MaxFleetActive + 1, SliceIDs: []uint32{1}}, false},
		{"negative rate", FleetConfig{UEs: 10, SliceIDs: []uint32{1}, MeanRateBps: -1}, false},
	}
	for _, tc := range cases {
		_, err := NewUEFleet(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: NewUEFleet err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestFleetRotationCoversPopulation(t *testing.T) {
	f, err := NewUEFleet(FleetConfig{UEs: 100, ActiveK: 16, SliceIDs: []uint32{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]int{}
	slots := 0
	// ceil(100/16) = 7 windows visit every UE at least once.
	for len(seen) < 100 {
		win := f.Advance(uint64(slots), testSlotDur)
		if len(win) != 16 {
			t.Fatalf("window size %d, want 16", len(win))
		}
		for _, u := range win {
			seen[u.ID]++
			if u.SliceID != 1 && u.SliceID != 2 {
				t.Fatalf("UE %d on unexpected slice %d", u.ID, u.SliceID)
			}
			if u.MCS < 4 || u.MCS > 27 {
				t.Fatalf("UE %d MCS %d outside population spread", u.ID, u.MCS)
			}
		}
		f.Absorb(uint64(slots))
		slots++
		if slots > 20 {
			t.Fatalf("rotation did not cover population after %d slots (saw %d)", slots, len(seen))
		}
	}
	if slots != 7 {
		t.Errorf("full coverage took %d windows, want 7", slots)
	}
}

// Lazy accrual: a UE untouched for R slots returns with ~R slots of traffic,
// matching what per-slot stepping would have enqueued.
func TestFleetLazyArrivalAccrual(t *testing.T) {
	f, err := NewUEFleet(FleetConfig{UEs: 8, ActiveK: 2, SliceIDs: []uint32{1}, MeanRateBps: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	win := f.Advance(0, testSlotDur)
	first := win[0].ID
	firstBits := win[0].BufferBits
	if firstBits <= 0 {
		t.Fatalf("first touch enqueued nothing")
	}
	f.Absorb(0)
	// Rotation period is 8/2 = 4 slots: the same UE reappears at slot 4
	// carrying 4 more slots of arrivals (nothing was served).
	for slot := uint64(1); slot <= 4; slot++ {
		win = f.Advance(slot, testSlotDur)
		f.Absorb(slot)
	}
	if win[0].ID != first {
		t.Fatalf("rotation misaligned: got UE %d, want %d", win[0].ID, first)
	}
	// 4 elapsed slots of accrual on top of the original 1: ratio 5x ±a few
	// bits of integer truncation per accrual.
	got := win[0].BufferBits
	want := 5 * firstBits
	if diff := got - want; diff < -8 || diff > 8 {
		t.Fatalf("lazy accrual: backlog %d after 5 slots, want ~%d", got, want)
	}
}

func TestFleetBufferOverflowDrops(t *testing.T) {
	// 1 Gb/s against an 8 Mbit buffer overflows within a few rotations.
	f, err := NewUEFleet(FleetConfig{UEs: 64, ActiveK: 8, SliceIDs: []uint32{1}, MeanRateBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for slot := uint64(0); slot < 128; slot++ {
		win := f.Advance(slot, testSlotDur)
		for _, u := range win {
			if u.BufferBits > DefaultMaxBufferBits {
				t.Fatalf("slot %d: buffer %d exceeds cap %d", slot, u.BufferBits, int64(DefaultMaxBufferBits))
			}
		}
		f.Absorb(slot)
	}
	if st := f.Stats(); st.DroppedBits == 0 {
		t.Fatal("sustained overload dropped nothing")
	}
}

func TestFleetServiceFoldsBack(t *testing.T) {
	f, err := NewUEFleet(FleetConfig{UEs: 4, ActiveK: 4, SliceIDs: []uint32{1}, MeanRateBps: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	win := f.Advance(0, testSlotDur)
	u := win[0]
	served := u.BufferBits / 2
	u.RecordService(served, testSlotDur, 0)
	f.Absorb(0)
	st := f.Stats()
	if st.DeliveredBits != served {
		t.Fatalf("delivered %d, want %d", st.DeliveredBits, served)
	}
	// The served UE's long-term average must survive the round trip and
	// decay while untouched... here ActiveK == UEs so it is touched every
	// slot; its average decays only via RecordService(0).
	win = f.Advance(1, testSlotDur)
	if win[0].AvgTputBps <= 0 {
		t.Fatal("EWMA lost across absorb/advance")
	}
}

func TestFleetDeterministicAcrossSeeds(t *testing.T) {
	build := func(seed int64) *UEFleet {
		f, err := NewUEFleet(FleetConfig{UEs: 32, ActiveK: 4, SliceIDs: []uint32{1, 2, 3}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b, c := build(7), build(7), build(8)
	sameAsA := true
	for i := range a.mcs {
		if a.mcs[i] != b.mcs[i] || a.sliceIdx[i] != b.sliceIdx[i] || a.rateBps[i] != b.rateBps[i] {
			t.Fatalf("same seed diverged at UE %d", i)
		}
		if a.mcs[i] != c.mcs[i] || a.sliceIdx[i] != c.sliceIdx[i] {
			sameAsA = false
		}
	}
	if sameAsA {
		t.Fatal("different seeds produced identical populations")
	}
}

func BenchmarkFleetAdvanceAbsorb(b *testing.B) {
	f, err := NewUEFleet(FleetConfig{UEs: 4096, ActiveK: 64, SliceIDs: []uint32{1, 2}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Advance(uint64(i), testSlotDur)
		f.Absorb(uint64(i))
	}
}

package ran

import (
	"fmt"
	"math"
	"time"
)

// MaxFleetActive caps a fleet's concurrently scheduled window. The bound
// keeps the per-slot scheduler input within what the zero-copy plugin ABI
// carries in one request (512 UEs) with ample headroom for explicitly
// attached UEs sharing the cell.
const MaxFleetActive = 128

// DefaultFleetActive is the window size when FleetConfig.ActiveK is zero.
const DefaultFleetActive = 64

// FleetConfig parameterizes a modeled UE population.
type FleetConfig struct {
	// UEs is the total modeled population (required, > 0).
	UEs int
	// ActiveK is how many fleet UEs are materialized for the scheduler
	// each slot (default DefaultFleetActive, capped at MaxFleetActive).
	ActiveK int
	// SliceIDs are the slices the population subscribes to, assigned per
	// UE by hash (required, non-empty).
	SliceIDs []uint32
	// MeanRateBps is the per-UE offered load; individual rates are
	// jittered ±50% around it by hash (default 64 kb/s).
	MeanRateBps float64
	// BaseID is the first fleet UE's ID; IDs are contiguous from it
	// (default 1<<20, clear of explicitly attached UEs).
	BaseID uint32
	// Seed selects the per-UE hash draws (0 behaves as 1).
	Seed int64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.ActiveK == 0 {
		c.ActiveK = DefaultFleetActive
	}
	if c.MeanRateBps == 0 {
		c.MeanRateBps = 64e3
	}
	if c.BaseID == 0 {
		c.BaseID = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate rejects configurations NewUEFleet would have to guess about.
func (c FleetConfig) Validate() error {
	if c.UEs <= 0 {
		return fmt.Errorf("ran: fleet needs a positive UE count, got %d", c.UEs)
	}
	if c.ActiveK < 0 || c.ActiveK > MaxFleetActive {
		return fmt.Errorf("ran: fleet active window %d outside [0, %d]", c.ActiveK, MaxFleetActive)
	}
	if len(c.SliceIDs) == 0 {
		return fmt.Errorf("ran: fleet needs at least one slice")
	}
	if len(c.SliceIDs) > 256 {
		return fmt.Errorf("ran: fleet supports at most 256 slices, got %d", len(c.SliceIDs))
	}
	if c.MeanRateBps < 0 {
		return fmt.Errorf("ran: negative fleet rate %f", c.MeanRateBps)
	}
	return nil
}

// UEFleet models thousands of UEs per cell at O(ActiveK) per-slot cost —
// the aggregation that makes a city-scale run tractable. Per-UE state lives
// in flat arrays (a few bytes each, not a UE struct with models attached);
// traffic arrival is accrued lazily — backlog(t) = backlog(touch) +
// rate x (t - touch) — only when a UE is touched; and each slot only a
// rotating window of ActiveK UEs is materialized as real *UE values for the
// scheduler, so every UE still periodically competes for PRBs, reports
// measurable throughput, and overflows its finite buffer under sustained
// load.
//
// The fleet is not safe for concurrent use; it is owned by one cell's slot
// loop (GNB.Step holds the cell lock while advancing it).
type UEFleet struct {
	cfg     FleetConfig
	slotDur time.Duration // set on first Advance

	// Per-UE compact state, indexed 0..UEs-1.
	mcs      []uint8
	sliceIdx []uint8 // index into cfg.SliceIDs
	rateBps  []float32
	backlog  []int64 // queued bits at lastSlot
	avgTput  []float32
	lastSlot []int64 // last slot this UE was materialized (-1 = never)

	pos    int   // rotation cursor: next window starts here
	winIdx []int // population indexes materialized in the current window
	window []*UE // reused UE values backing the current window

	delivered int64
	dropped   int64
}

// NewUEFleet builds the population from a validated config.
func NewUEFleet(cfg FleetConfig) (*UEFleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	f := &UEFleet{
		cfg:      cfg,
		mcs:      make([]uint8, cfg.UEs),
		sliceIdx: make([]uint8, cfg.UEs),
		rateBps:  make([]float32, cfg.UEs),
		backlog:  make([]int64, cfg.UEs),
		avgTput:  make([]float32, cfg.UEs),
		lastSlot: make([]int64, cfg.UEs),
		winIdx:   make([]int, 0, cfg.ActiveK),
		window:   make([]*UE, cfg.ActiveK),
	}
	for i := range f.window {
		f.window[i] = &UE{}
	}
	for i := 0; i < cfg.UEs; i++ {
		h := fleetHash(cfg.Seed, uint64(i))
		// MCS spread 4..27: the population covers cell-edge to near-peak.
		f.mcs[i] = uint8(4 + h%24)
		f.sliceIdx[i] = uint8((h >> 8) % uint64(len(cfg.SliceIDs)))
		// ±50% rate jitter so the population's demand isn't a comb.
		jitter := 0.5 + float64((h>>16)%1024)/1023.0
		f.rateBps[i] = float32(cfg.MeanRateBps * jitter)
		f.lastSlot[i] = -1
	}
	return f, nil
}

// fleetHash is a splitmix64-style draw, deterministic per (seed, index).
func fleetHash(seed int64, i uint64) uint64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + i*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fleetPFAlpha mirrors the UE EWMA horizon for the lazily decayed average.
const fleetPFAlpha = 1.0 / PFTimeConstant

// Advance materializes the next rotation window for slot: each returned UE
// carries the backlog accrued since it was last touched and its decayed
// long-term average, ready for view building and grant application. Call
// Absorb after grants to fold the outcomes back. slotDur converts offered
// load to bits per slot.
func (f *UEFleet) Advance(slot uint64, slotDur time.Duration) []*UE {
	f.slotDur = slotDur
	slotSec := slotDur.Seconds()
	n := f.cfg.UEs
	k := f.cfg.ActiveK
	if k > n {
		k = n
	}
	f.winIdx = f.winIdx[:0]
	s := int64(slot)
	for j := 0; j < k; j++ {
		idx := (f.pos + j) % n
		f.winIdx = append(f.winIdx, idx)
		// Slots since the UE was last serviced; at least 1 so the first
		// touch delivers one slot of arrivals, like UE.StepSlot would.
		elapsed := s - f.lastSlot[idx]
		if elapsed < 1 {
			elapsed = 1
		}
		// Lazy arrival accrual with finite-buffer overflow.
		arriving := int64(float64(f.rateBps[idx]) * slotSec * float64(elapsed))
		backlog := f.backlog[idx] + arriving
		if backlog > DefaultMaxBufferBits {
			f.dropped += backlog - DefaultMaxBufferBits
			backlog = DefaultMaxBufferBits
		}
		// Lazy EWMA decay for the unserviced slots; the serviced slot
		// itself is applied by RecordService during grant application.
		avg := float64(f.avgTput[idx])
		if elapsed > 1 && avg > 0 {
			avg *= math.Pow(1-fleetPFAlpha, float64(elapsed-1))
		}
		u := f.window[j]
		*u = UE{
			ID:         f.cfg.BaseID + uint32(idx),
			SliceID:    f.cfg.SliceIDs[f.sliceIdx[idx]],
			MCS:        int(f.mcs[idx]),
			CQI:        mcsToApproxCQI(int(f.mcs[idx])),
			BufferBits: backlog,
			AvgTputBps: avg,
		}
	}
	return f.window[:k]
}

// Absorb folds the current window's post-grant state back into the compact
// arrays and advances the rotation, so the next slot materializes a fresh
// cohort.
func (f *UEFleet) Absorb(slot uint64) {
	s := int64(slot)
	for j, idx := range f.winIdx {
		u := f.window[j]
		f.backlog[idx] = u.BufferBits
		f.avgTput[idx] = float32(u.AvgTputBps)
		f.delivered += u.DeliveredBits
		f.dropped += u.DroppedBits
		f.lastSlot[idx] = s
	}
	if n := f.cfg.UEs; n > 0 {
		f.pos = (f.pos + len(f.winIdx)) % n
	}
}

// Size returns the modeled population.
func (f *UEFleet) Size() int { return f.cfg.UEs }

// ActiveK returns the per-slot window size.
func (f *UEFleet) ActiveK() int {
	k := f.cfg.ActiveK
	if k > f.cfg.UEs {
		return f.cfg.UEs
	}
	return k
}

// SliceIDs returns the slices the population subscribes to.
func (f *UEFleet) SliceIDs() []uint32 {
	return append([]uint32(nil), f.cfg.SliceIDs...)
}

// FleetStats is the flat snapshot of a fleet's aggregate accounting.
type FleetStats struct {
	UEs           int   `json:"ues"`
	ActiveK       int   `json:"active_k"`
	DeliveredBits int64 `json:"delivered_bits"`
	DroppedBits   int64 `json:"dropped_bits"`
}

// Stats reports aggregate delivery and overflow accounting.
func (f *UEFleet) Stats() FleetStats {
	return FleetStats{
		UEs:           f.cfg.UEs,
		ActiveK:       f.ActiveK(),
		DeliveredBits: f.delivered,
		DroppedBits:   f.dropped,
	}
}

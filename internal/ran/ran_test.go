package ran

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCellDefaultsMatchPaperTestbed(t *testing.T) {
	c := CellConfig{}.WithDefaults()
	if c.PRBs != 52 {
		t.Errorf("PRBs = %d, want 52 (10 MHz @ 15 kHz)", c.PRBs)
	}
	if c.SlotDuration != time.Millisecond {
		t.Errorf("slot = %v, want 1 ms", c.SlotDuration)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestDerivePRBsTable(t *testing.T) {
	cases := []struct {
		mhz  int64
		scs  int
		want int
	}{
		{5, 15, 25}, {10, 15, 52}, {20, 15, 106}, {50, 15, 270},
		{20, 30, 51}, {100, 30, 273},
	}
	for _, tc := range cases {
		c := CellConfig{BandwidthHz: tc.mhz * 1_000_000, SCSkHz: tc.scs}.WithDefaults()
		if c.PRBs != tc.want {
			t.Errorf("%d MHz @ %d kHz: PRBs = %d, want %d", tc.mhz, tc.scs, c.PRBs, tc.want)
		}
	}
}

func TestSlotDurationScalesWithSCS(t *testing.T) {
	c := CellConfig{BandwidthHz: 20_000_000, SCSkHz: 30}.WithDefaults()
	if c.SlotDuration != 500*time.Microsecond {
		t.Errorf("30 kHz slot = %v, want 0.5 ms", c.SlotDuration)
	}
}

func TestCellValidateRejectsBadConfigs(t *testing.T) {
	bad := []CellConfig{
		{PRBs: -1, SlotDuration: time.Millisecond, Overhead: 0.1},
		{PRBs: 10, SlotDuration: 0, Overhead: 0.1},
		{PRBs: 10, SlotDuration: time.Millisecond, Overhead: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestSpectralEfficiencyMonotone(t *testing.T) {
	prev := 0.0
	for mcs := 0; mcs <= MaxMCS; mcs++ {
		eff := SpectralEfficiency(mcs)
		// The 3GPP table has one non-monotone step at the QPSK/16QAM
		// boundary (MCS 9 -> 10); allow equality-ish there.
		if eff < prev*0.99 {
			t.Errorf("efficiency(MCS %d) = %v < previous %v", mcs, eff, prev)
		}
		prev = eff
	}
	if SpectralEfficiency(-5) != SpectralEfficiency(0) {
		t.Error("negative MCS not clamped")
	}
	if SpectralEfficiency(99) != SpectralEfficiency(MaxMCS) {
		t.Error("oversized MCS not clamped")
	}
}

func TestCQIToMCSMonotone(t *testing.T) {
	prev := -1
	for cqi := 1; cqi <= MaxCQI; cqi++ {
		mcs := CQIToMCS(cqi)
		if mcs < prev {
			t.Errorf("CQIToMCS(%d) = %d < previous %d", cqi, mcs, prev)
		}
		if mcs < 0 || mcs > MaxMCS {
			t.Errorf("CQIToMCS(%d) = %d out of range", cqi, mcs)
		}
		prev = mcs
	}
	if CQIToMCS(0) != CQIToMCS(1) || CQIToMCS(99) != CQIToMCS(15) {
		t.Error("CQI clamping broken")
	}
}

func TestTransportBlockArithmetic(t *testing.T) {
	c := CellConfig{}.WithDefaults()
	if got := c.TransportBlockBits(10, 0); got != 0 {
		t.Errorf("0 PRBs => %d bits", got)
	}
	if got := c.TransportBlockBits(10, -3); got != 0 {
		t.Errorf("negative PRBs => %d bits", got)
	}
	one := c.TransportBlockBits(20, 1)
	ten := c.TransportBlockBits(20, 10)
	if ten != 10*one {
		t.Errorf("TBS not linear in PRBs: %d vs 10*%d", ten, one)
	}
	// Peak rate sanity: 52 PRB @ MCS 28 over 1 ms is tens of Mb/s.
	peak := c.PeakRateBps(28)
	if peak < 30e6 || peak > 60e6 {
		t.Errorf("peak rate = %.1f Mb/s, outside plausible 30-60", peak/1e6)
	}
	if got := c.SlotsPerSecond(); got != 1000 {
		t.Errorf("slots/s = %v", got)
	}
}

func TestUEBufferAccounting(t *testing.T) {
	ue := NewUE(1, 1, 20)
	ue.EnqueueBits(1000)
	if ue.BufferBits != 1000 {
		t.Fatalf("buffer = %d", ue.BufferBits)
	}
	ue.EnqueueBits(-5) // ignored
	if ue.BufferBits != 1000 {
		t.Fatalf("negative enqueue changed buffer: %d", ue.BufferBits)
	}
	ue.RecordService(400, time.Millisecond, 100)
	if ue.BufferBits != 600 || ue.DeliveredBits != 400 {
		t.Fatalf("after service: buf=%d delivered=%d", ue.BufferBits, ue.DeliveredBits)
	}
	// Serving more than buffered drains exactly the buffer.
	ue.RecordService(10_000, time.Millisecond, 100)
	if ue.BufferBits != 0 || ue.DeliveredBits != 1000 {
		t.Fatalf("over-service: buf=%d delivered=%d", ue.BufferBits, ue.DeliveredBits)
	}
	if ue.LastServedBits() != 600 {
		t.Fatalf("lastServed = %d", ue.LastServedBits())
	}
}

func TestUEBufferOverflowDrops(t *testing.T) {
	ue := NewUE(1, 1, 20)
	ue.MaxBufferBits = 1000
	ue.EnqueueBits(1500)
	if ue.BufferBits != 1000 || ue.DroppedBits != 500 {
		t.Fatalf("buf=%d dropped=%d", ue.BufferBits, ue.DroppedBits)
	}
}

func TestUEAvgTputEWMA(t *testing.T) {
	ue := NewUE(1, 1, 20)
	ue.EnqueueBits(1 << 30)
	ue.MaxBufferBits = 1 << 40
	// Serve 1000 bits/ms = 1 Mb/s for many slots: avg approaches 1e6.
	for i := 0; i < 20_000; i++ {
		ue.RecordService(1000, time.Millisecond, 1000)
		ue.EnqueueBits(1000)
	}
	if math.Abs(ue.AvgTputBps-1e6)/1e6 > 0.01 {
		t.Fatalf("EWMA = %v, want ~1e6", ue.AvgTputBps)
	}
	// Stop serving: avg decays toward 0.
	for i := 0; i < 20_000; i++ {
		ue.RecordService(0, time.Millisecond, 1000)
	}
	if ue.AvgTputBps > 1000 {
		t.Fatalf("EWMA did not decay: %v", ue.AvgTputBps)
	}
}

func TestNewUEClampsMCS(t *testing.T) {
	if ue := NewUE(1, 1, -3); ue.MCS != 0 {
		t.Errorf("MCS = %d", ue.MCS)
	}
	if ue := NewUE(1, 1, 99); ue.MCS != MaxMCS {
		t.Errorf("MCS = %d", ue.MCS)
	}
}

func TestCBRRateIsExactLongRun(t *testing.T) {
	src := NewCBR(1_234_567) // bits per second
	var total int64
	slots := 10_000 // 10 s
	for i := 0; i < slots; i++ {
		total += src.Step(uint64(i), time.Millisecond)
	}
	want := int64(1_234_567 * 10)
	if total < want-10 || total > want+10 {
		t.Fatalf("CBR delivered %d bits over 10 s, want ~%d", total, want)
	}
}

func TestFullBuffer(t *testing.T) {
	fb := &FullBuffer{}
	if fb.Step(0, time.Millisecond) != 1<<20 {
		t.Error("default full buffer offer")
	}
	fb2 := &FullBuffer{BitsPerSlot: 77}
	if fb2.Step(0, time.Millisecond) != 77 {
		t.Error("custom full buffer offer")
	}
}

func TestOnOffMeanRate(t *testing.T) {
	src := NewOnOff(10e6, 100*time.Millisecond, 100*time.Millisecond, 1)
	var total int64
	slots := 60_000
	for i := 0; i < slots; i++ {
		total += src.Step(uint64(i), time.Millisecond)
	}
	// 50% duty cycle at 10 Mb/s => ~5 Mb/s mean; generous tolerance for
	// the stochastic duty cycle.
	mean := float64(total) / 60.0
	if mean < 2.5e6 || mean > 7.5e6 {
		t.Fatalf("OnOff mean = %.2f Mb/s, want ~5", mean/1e6)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	src := NewPoisson(100, 12000, 2) // 100 pkt/s * 12 kb = 1.2 Mb/s
	var total int64
	slots := 30_000
	for i := 0; i < slots; i++ {
		total += src.Step(uint64(i), time.Millisecond)
	}
	mean := float64(total) / 30.0
	if mean < 0.9e6 || mean > 1.5e6 {
		t.Fatalf("Poisson mean = %.2f Mb/s, want ~1.2", mean/1e6)
	}
}

func TestStaticChannel(t *testing.T) {
	ue := NewUE(1, 1, 10)
	ch := &StaticChannel{MCS: 24}
	ch.Step(0, ue)
	if ue.MCS != 24 {
		t.Fatalf("MCS = %d", ue.MCS)
	}
}

func TestRandomWalkChannelStaysBounded(t *testing.T) {
	ue := NewUE(1, 1, 15)
	ch := NewRandomWalkChannel(5, 12, 0.5, 3)
	for i := 0; i < 10_000; i++ {
		ch.Step(uint64(i), ue)
		if ue.CQI < 5 || ue.CQI > 12 {
			t.Fatalf("slot %d: CQI %d escaped [5, 12]", i, ue.CQI)
		}
		if ue.MCS != CQIToMCS(ue.CQI) {
			t.Fatalf("MCS %d inconsistent with CQI %d", ue.MCS, ue.CQI)
		}
	}
}

func TestFadingChannelOscillates(t *testing.T) {
	ue := NewUE(1, 1, 15)
	ch := NewFadingChannel(3, 13, 100*time.Millisecond, 0, time.Millisecond)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		ch.Step(uint64(i), ue)
		seen[ue.CQI] = true
		if ue.CQI < 3 || ue.CQI > 13 {
			t.Fatalf("CQI %d out of bounds", ue.CQI)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("fading produced only %d distinct CQIs", len(seen))
	}
}

// Property: enqueue/serve never makes any counter negative and conserves
// bits (enqueued = buffered + delivered + dropped).
func TestQuickUEConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		ue := NewUE(1, 1, 20)
		ue.MaxBufferBits = 50_000
		var enqueued int64
		for _, op := range ops {
			amount := int64(op)
			if op%2 == 0 {
				ue.EnqueueBits(amount)
				enqueued += amount
			} else {
				ue.RecordService(amount, time.Millisecond, 100)
			}
			if ue.BufferBits < 0 || ue.DeliveredBits < 0 || ue.DroppedBits < 0 {
				return false
			}
		}
		return enqueued == ue.BufferBits+ue.DeliveredBits+ue.DroppedBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package ran models the 5G RAN substrate WA-RAN plugs into: cell
// configuration (numerology, PRB grid), link adaptation tables (CQI → MCS →
// transport block size), per-UE state with channel models, and downlink
// traffic generation.
//
// The model is slot-clocked and deterministic: one call to the scheduler per
// slot, transport-block arithmetic derived from the 3GPP spectral-efficiency
// tables, and seeded randomness. It replaces the srsRAN + radio testbed of
// the paper while preserving the scheduler contract the paper evaluates:
// per-UE channel quality, buffer status and long-term throughput in; per-UE
// PRB grants out; achieved bitrates emerge from the same TBS arithmetic.
package ran

import (
	"fmt"
	"time"
)

// CellConfig describes the cell the gNB serves. The zero value is completed
// by WithDefaults to the paper's testbed configuration: FDD band n3,
// 10 MHz bandwidth at 15 kHz subcarrier spacing → 52 PRBs and 1 ms slots.
type CellConfig struct {
	// BandwidthHz is the channel bandwidth (default 10 MHz).
	BandwidthHz int64
	// SCSkHz is the subcarrier spacing in kHz (default 15).
	SCSkHz int
	// PRBs is the number of physical resource blocks per slot. If zero it
	// is derived from bandwidth and SCS per 3GPP TS 38.101 Table 5.3.2-1.
	PRBs int
	// SlotDuration is derived from SCS when zero (1 ms at 15 kHz).
	SlotDuration time.Duration
	// Overhead is the fraction of resource elements lost to control
	// channels and reference signals (default 0.14).
	Overhead float64
}

// WithDefaults returns the configuration with unset fields filled in.
func (c CellConfig) WithDefaults() CellConfig {
	if c.BandwidthHz == 0 {
		c.BandwidthHz = 10_000_000
	}
	if c.SCSkHz == 0 {
		c.SCSkHz = 15
	}
	if c.PRBs == 0 {
		c.PRBs = derivePRBs(c.BandwidthHz, c.SCSkHz)
	}
	if c.SlotDuration == 0 {
		// Slot duration halves for each numerology step above 15 kHz.
		c.SlotDuration = time.Millisecond * 15 / time.Duration(c.SCSkHz)
	}
	if c.Overhead == 0 {
		c.Overhead = 0.14
	}
	return c
}

// Validate rejects nonsensical configurations.
func (c CellConfig) Validate() error {
	if c.PRBs <= 0 {
		return fmt.Errorf("ran: cell must have at least 1 PRB, got %d", c.PRBs)
	}
	if c.SlotDuration <= 0 {
		return fmt.Errorf("ran: slot duration must be positive")
	}
	if c.Overhead < 0 || c.Overhead >= 1 {
		return fmt.Errorf("ran: overhead %v outside [0, 1)", c.Overhead)
	}
	return nil
}

// derivePRBs approximates 3GPP TS 38.101-1 Table 5.3.2-1 transmission
// bandwidth configurations for common FR1 cases.
func derivePRBs(bwHz int64, scsKHz int) int {
	type key struct {
		mhz int
		scs int
	}
	table := map[key]int{
		{5, 15}: 25, {10, 15}: 52, {15, 15}: 79, {20, 15}: 106,
		{25, 15}: 133, {30, 15}: 160, {40, 15}: 216, {50, 15}: 270,
		{5, 30}: 11, {10, 30}: 24, {15, 30}: 38, {20, 30}: 51,
		{40, 30}: 106, {50, 30}: 133, {100, 30}: 273,
	}
	if n, ok := table[key{int(bwHz / 1_000_000), scsKHz}]; ok {
		return n
	}
	// Fall back to the nominal formula: 12 subcarriers per PRB with ~10% guard.
	sub := int64(scsKHz) * 1000 * 12
	return int(float64(bwHz) * 0.9 / float64(sub))
}

// Link adaptation tables. Spectral efficiency per MCS index follows 3GPP
// TS 38.214 Table 5.1.3.1-1 (64QAM table), MCS 0..28.
var mcsSpectralEff = [29]float64{
	0.2344, 0.3066, 0.3770, 0.4902, 0.6016, 0.7402, 0.8770, 1.0273,
	1.1758, 1.3262, 1.3281, 1.4766, 1.6953, 1.9141, 2.1602, 2.4063,
	2.5703, 2.5664, 2.7305, 3.0293, 3.3223, 3.6094, 3.9023, 4.2129,
	4.5234, 4.8164, 5.1152, 5.3320, 5.5547,
}

// MaxMCS is the highest MCS index in the 64QAM table.
const MaxMCS = 28

// MaxCQI is the highest CQI index.
const MaxCQI = 15

// cqiToMCS maps CQI 1..15 onto a representative MCS per 3GPP TS 38.214
// Table 5.2.2.1-2 efficiency alignment.
var cqiToMCS = [16]int{0, 0, 2, 4, 6, 8, 11, 13, 15, 18, 20, 22, 24, 26, 27, 28}

// CQIToMCS maps a channel quality indicator (1..15) to an MCS index.
// Out-of-range CQIs are clamped.
func CQIToMCS(cqi int) int {
	if cqi < 1 {
		cqi = 1
	}
	if cqi > MaxCQI {
		cqi = MaxCQI
	}
	return cqiToMCS[cqi]
}

// SpectralEfficiency returns bits per resource element for an MCS index
// (clamped to the valid range).
func SpectralEfficiency(mcs int) float64 {
	if mcs < 0 {
		mcs = 0
	}
	if mcs > MaxMCS {
		mcs = MaxMCS
	}
	return mcsSpectralEff[mcs]
}

// resource elements per PRB per slot: 12 subcarriers x 14 OFDM symbols.
const resourceElementsPerPRB = 12 * 14

// BitsPerPRB returns the usable transport bits one PRB carries in one slot
// at the given MCS, after overhead.
func (c CellConfig) BitsPerPRB(mcs int) int {
	raw := SpectralEfficiency(mcs) * resourceElementsPerPRB * (1 - c.Overhead)
	return int(raw)
}

// TransportBlockBits returns the transport block size for a grant of prbs
// resource blocks at the given MCS.
func (c CellConfig) TransportBlockBits(mcs, prbs int) int {
	if prbs <= 0 {
		return 0
	}
	return c.BitsPerPRB(mcs) * prbs
}

// PeakRateBps returns the cell's peak downlink throughput at the given MCS,
// useful for sizing experiment targets.
func (c CellConfig) PeakRateBps(mcs int) float64 {
	bitsPerSlot := float64(c.TransportBlockBits(mcs, c.PRBs))
	return bitsPerSlot / c.SlotDuration.Seconds()
}

// SlotsPerSecond returns the number of scheduling opportunities per second.
func (c CellConfig) SlotsPerSecond() float64 {
	return 1.0 / c.SlotDuration.Seconds()
}

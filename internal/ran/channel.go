package ran

import (
	"math"
	"math/rand"
	"time"
)

func mathExp(x float64) float64 { return math.Exp(x) }

// ChannelModel evolves a UE's radio conditions slot by slot.
type ChannelModel interface {
	Step(slot uint64, ue *UE)
}

// StaticChannel pins the UE to a fixed MCS — the configuration used in the
// paper's Fig. 5b (UEs at MCS 20, 24 and 28).
type StaticChannel struct {
	MCS int
}

// Step implements ChannelModel.
func (s *StaticChannel) Step(_ uint64, ue *UE) {
	ue.MCS = s.MCS
	ue.CQI = mcsToApproxCQI(s.MCS)
}

// RandomWalkChannel performs a bounded random walk on CQI, modelling slow
// fading. Each slot the CQI moves -1/0/+1 with the configured probability.
type RandomWalkChannel struct {
	MinCQI, MaxCQI int
	// StepProb is the per-slot probability of a CQI change (default 0.01).
	StepProb float64
	rng      *rand.Rand
}

// NewRandomWalkChannel creates a bounded CQI random walk.
func NewRandomWalkChannel(minCQI, maxCQI int, stepProb float64, seed int64) *RandomWalkChannel {
	if minCQI < 1 {
		minCQI = 1
	}
	if maxCQI > MaxCQI {
		maxCQI = MaxCQI
	}
	if stepProb == 0 {
		stepProb = 0.01
	}
	return &RandomWalkChannel{MinCQI: minCQI, MaxCQI: maxCQI, StepProb: stepProb, rng: rand.New(rand.NewSource(seed))}
}

// Step implements ChannelModel.
func (w *RandomWalkChannel) Step(_ uint64, ue *UE) {
	if ue.CQI == 0 {
		ue.CQI = (w.MinCQI + w.MaxCQI) / 2
	}
	if w.rng.Float64() < w.StepProb {
		if w.rng.Intn(2) == 0 {
			ue.CQI--
		} else {
			ue.CQI++
		}
		if ue.CQI < w.MinCQI {
			ue.CQI = w.MinCQI
		}
		if ue.CQI > w.MaxCQI {
			ue.CQI = w.MaxCQI
		}
	}
	ue.MCS = CQIToMCS(ue.CQI)
}

// FadingChannel approximates periodic multi-path fading: CQI oscillates
// sinusoidally between bounds with per-UE phase, giving the scheduler a
// frequency-selective-like pattern to exploit.
type FadingChannel struct {
	MinCQI, MaxCQI int
	Period         time.Duration
	Phase          float64
	slotDur        time.Duration
}

// NewFadingChannel creates a sinusoidal CQI oscillation.
func NewFadingChannel(minCQI, maxCQI int, period time.Duration, phase float64, slotDur time.Duration) *FadingChannel {
	if slotDur == 0 {
		slotDur = time.Millisecond
	}
	return &FadingChannel{MinCQI: minCQI, MaxCQI: maxCQI, Period: period, Phase: phase, slotDur: slotDur}
}

// Step implements ChannelModel.
func (f *FadingChannel) Step(slot uint64, ue *UE) {
	t := float64(slot) * f.slotDur.Seconds()
	omega := 2 * math.Pi / f.Period.Seconds()
	x := (math.Sin(omega*t+f.Phase) + 1) / 2
	cqi := f.MinCQI + int(math.Round(x*float64(f.MaxCQI-f.MinCQI)))
	ue.CQI = cqi
	ue.MCS = CQIToMCS(cqi)
}

package ran

import (
	"math"
	"math/rand"
)

// HARQ models transport-block errors and retransmission. Real links lose
// blocks at a block-error rate (BLER) that link adaptation steers toward
// ~10%; failed blocks are retransmitted, so the goodput a scheduler
// decision yields is less than the transport block it granted. Wiring a
// HARQ model into UEs makes the simulated bitrates include this loss, and
// gives schedulers realistic buffer dynamics (failed data stays queued).
type HARQ struct {
	// TargetBLER is the block error probability when the UE transmits at
	// exactly the MCS its CQI suggests (default 0.1, the LTE/NR target).
	TargetBLER float64
	// MaxRetransmissions bounds retries before a block is dropped
	// (default 4, mirroring typical HARQ configuration).
	MaxRetransmissions int

	rng *rand.Rand

	// Counters.
	Transmissions   uint64
	Failures        uint64
	Drops           uint64
	pendingRetx     int64 // bits awaiting retransmission
	pendingAttempts int
}

// NewHARQ creates a HARQ entity with the given seed for reproducibility.
func NewHARQ(seed int64) *HARQ {
	return &HARQ{
		TargetBLER:         0.1,
		MaxRetransmissions: 4,
		rng:                rand.New(rand.NewSource(seed)),
	}
}

// bler returns the error probability for transmitting at mcs while the
// channel supports chanMCS: at or below the supported rate the target BLER
// applies, above it the error rate grows steeply (about 2x per excess MCS
// step, saturating at 1).
func (h *HARQ) bler(mcs, chanMCS int) float64 {
	p := h.TargetBLER
	if p <= 0 {
		p = 0.1
	}
	if mcs > chanMCS {
		p *= math.Pow(2, float64(mcs-chanMCS))
	}
	if p > 1 {
		p = 1
	}
	return p
}

// Transmit simulates sending a transport block of tbs bits at mcs over a
// channel currently supporting chanMCS. It returns the bits actually
// delivered this slot (0 on failure). Failed blocks are tracked and
// returned for retransmission by PendingRetx.
func (h *HARQ) Transmit(tbs int64, mcs, chanMCS int) int64 {
	if tbs <= 0 {
		return 0
	}
	h.Transmissions++
	if h.rng.Float64() >= h.bler(mcs, chanMCS) {
		return tbs
	}
	h.Failures++
	h.pendingRetx += tbs
	h.pendingAttempts++
	if h.pendingAttempts > h.MaxRetransmissions {
		// Give up: the block is lost; higher layers would recover it.
		h.Drops++
		h.pendingRetx = 0
		h.pendingAttempts = 0
	}
	return 0
}

// PendingRetx reports bits awaiting retransmission. The MAC serves these
// before new data.
func (h *HARQ) PendingRetx() int64 { return h.pendingRetx }

// AckRetx clears up to bits of pending retransmissions (they were finally
// delivered) and returns the amount cleared.
func (h *HARQ) AckRetx(bits int64) int64 {
	if bits > h.pendingRetx {
		bits = h.pendingRetx
	}
	h.pendingRetx -= bits
	if h.pendingRetx == 0 {
		h.pendingAttempts = 0
	}
	return bits
}

// BLERObserved returns the measured block error rate so far.
func (h *HARQ) BLERObserved() float64 {
	if h.Transmissions == 0 {
		return 0
	}
	return float64(h.Failures) / float64(h.Transmissions)
}

package ran

import (
	"math"
	"testing"
)

func TestHARQObservedBLERMatchesTarget(t *testing.T) {
	h := NewHARQ(1)
	for i := 0; i < 50_000; i++ {
		delivered := h.Transmit(1000, 20, 20)
		if delivered != 0 && delivered != 1000 {
			t.Fatalf("delivered = %d", delivered)
		}
		h.AckRetx(delivered)
	}
	if got := h.BLERObserved(); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("observed BLER = %v, want ~0.1", got)
	}
}

func TestHARQBLERGrowsAboveChannel(t *testing.T) {
	h := NewHARQ(2)
	// Transmitting 4 MCS steps above the channel: BLER 0.1*2^4 = 1.0.
	if p := h.bler(24, 20); p != 1.0 {
		t.Fatalf("bler(24, 20) = %v, want saturated 1.0", p)
	}
	if p := h.bler(21, 20); math.Abs(p-0.2) > 1e-9 {
		t.Fatalf("bler(21, 20) = %v, want 0.2", p)
	}
	if p := h.bler(15, 20); p != 0.1 {
		t.Fatalf("bler(15, 20) = %v, want target", p)
	}
}

func TestHARQDropAfterMaxRetransmissions(t *testing.T) {
	h := NewHARQ(3)
	h.TargetBLER = 1.0 // every transmission fails
	h.MaxRetransmissions = 2
	for i := 0; i < 3; i++ {
		if got := h.Transmit(500, 10, 10); got != 0 {
			t.Fatalf("delivery despite BLER 1.0: %d", got)
		}
	}
	if h.Drops != 1 {
		t.Fatalf("drops = %d, want 1 after exceeding max retx", h.Drops)
	}
	if h.PendingRetx() != 0 {
		t.Fatalf("pending after drop = %d", h.PendingRetx())
	}
}

func TestHARQZeroAndNegativeTBS(t *testing.T) {
	h := NewHARQ(4)
	if h.Transmit(0, 10, 10) != 0 || h.Transmit(-5, 10, 10) != 0 {
		t.Fatal("empty blocks delivered bits")
	}
	if h.Transmissions != 0 {
		t.Fatal("empty blocks counted as transmissions")
	}
}

func TestHARQAckRetxClamps(t *testing.T) {
	h := NewHARQ(5)
	h.TargetBLER = 1.0
	h.Transmit(100, 10, 10)
	if h.PendingRetx() != 100 {
		t.Fatalf("pending = %d", h.PendingRetx())
	}
	if got := h.AckRetx(500); got != 100 {
		t.Fatalf("acked %d, want clamp to 100", got)
	}
	if h.PendingRetx() != 0 {
		t.Fatal("pending not cleared")
	}
}

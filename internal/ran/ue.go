package ran

import (
	"fmt"
	"time"
)

// UE is one attached user terminal, as seen by the MAC scheduler: channel
// quality, downlink buffer occupancy, and the long-term served throughput
// used by proportional-fair policies.
type UE struct {
	// ID is the scheduler-visible identifier (analogous to an RNTI).
	ID uint32
	// SliceID is the network slice (MVNO) this UE is subscribed to.
	SliceID uint32
	// CQI is the reported channel quality indicator (1..15). MCS follows
	// from it unless the channel model sets MCS directly.
	CQI int
	// MCS is the current modulation-and-coding scheme (0..28).
	MCS int
	// BufferBits is the downlink queue occupancy awaiting scheduling.
	BufferBits int64
	// AvgTputBps is the exponentially weighted average of served
	// throughput, maintained by RecordService.
	AvgTputBps float64
	// DeliveredBits counts total bits served since attach.
	DeliveredBits int64
	// DroppedBits counts traffic discarded due to buffer overflow.
	DroppedBits int64
	// Traffic fills the downlink buffer each slot. Nil means no traffic.
	Traffic TrafficSource
	// Channel evolves CQI/MCS each slot. Nil means static conditions.
	Channel ChannelModel
	// HARQ, when non-nil, applies a block-error model to every grant:
	// failed transport blocks deliver nothing and stay queued.
	HARQ *HARQ
	// MaxBufferBits caps the downlink queue; zero means 8 Mbit.
	MaxBufferBits int64

	// served in the current slot, for per-slot observers.
	lastServedBits int64
}

// DefaultMaxBufferBits is the downlink queue cap when UE.MaxBufferBits is 0.
const DefaultMaxBufferBits = 8 << 20

// NewUE creates a UE with a static channel at the given MCS.
func NewUE(id, sliceID uint32, mcs int) *UE {
	if mcs < 0 {
		mcs = 0
	}
	if mcs > MaxMCS {
		mcs = MaxMCS
	}
	return &UE{ID: id, SliceID: sliceID, MCS: mcs, CQI: mcsToApproxCQI(mcs)}
}

func mcsToApproxCQI(mcs int) int {
	for cqi := 1; cqi <= MaxCQI; cqi++ {
		if cqiToMCS[cqi] >= mcs {
			return cqi
		}
	}
	return MaxCQI
}

// String implements fmt.Stringer for diagnostics.
func (u *UE) String() string {
	return fmt.Sprintf("ue{id=%d slice=%d mcs=%d buf=%dB avg=%.0fbps}",
		u.ID, u.SliceID, u.MCS, u.BufferBits/8, u.AvgTputBps)
}

// StepSlot advances traffic and channel models by one slot.
func (u *UE) StepSlot(slot uint64, slotDur time.Duration) {
	if u.Channel != nil {
		u.Channel.Step(slot, u)
	}
	if u.Traffic != nil {
		arriving := u.Traffic.Step(slot, slotDur)
		u.EnqueueBits(arriving)
	}
	u.lastServedBits = 0
}

// EnqueueBits adds downlink traffic to the UE's buffer, dropping overflow.
func (u *UE) EnqueueBits(bits int64) {
	if bits <= 0 {
		return
	}
	maxBuf := u.MaxBufferBits
	if maxBuf == 0 {
		maxBuf = DefaultMaxBufferBits
	}
	space := maxBuf - u.BufferBits
	if bits > space {
		u.DroppedBits += bits - space
		bits = space
	}
	u.BufferBits += bits
}

// PFTimeConstant is the default averaging horizon (in slots) for the
// long-term throughput EWMA. The paper deliberately uses a large constant
// in Fig. 5b to stress the PF scheduler's fairness memory.
const PFTimeConstant = 1000.0

// RecordService applies a grant outcome: servedBits were delivered this
// slot. It updates the buffer, counters, and the PF average. timeConstant
// is the EWMA horizon in slots (0 means PFTimeConstant).
func (u *UE) RecordService(servedBits int64, slotDur time.Duration, timeConstant float64) {
	if servedBits < 0 {
		servedBits = 0
	}
	if servedBits > u.BufferBits {
		servedBits = u.BufferBits
	}
	u.BufferBits -= servedBits
	u.DeliveredBits += servedBits
	u.lastServedBits = servedBits
	if timeConstant <= 0 {
		timeConstant = PFTimeConstant
	}
	alpha := 1.0 / timeConstant
	instRate := float64(servedBits) / slotDur.Seconds()
	u.AvgTputBps = (1-alpha)*u.AvgTputBps + alpha*instRate
}

// LastServedBits returns the bits delivered in the most recent slot.
func (u *UE) LastServedBits() int64 { return u.lastServedBits }

// BufferBytes returns the queue occupancy in bytes, saturating at the
// uint32 range used by the scheduling ABI.
func (u *UE) BufferBytes() uint32 {
	b := u.BufferBits / 8
	if b > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(b)
}

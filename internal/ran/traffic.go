package ran

import (
	"math/rand"
	"time"
)

// TrafficSource produces downlink traffic for one UE. Step returns the
// number of bits arriving during the given slot. Implementations are
// deterministic for a fixed seed so experiments are reproducible.
type TrafficSource interface {
	Step(slot uint64, slotDur time.Duration) int64
}

// CBR is a constant-bit-rate source — the shape iperf3 UDP traffic takes in
// the paper's testbed.
type CBR struct {
	// RateBps is the offered load in bits per second.
	RateBps float64
	// accum carries fractional bits between slots so long-run rate is exact.
	accum float64
}

// NewCBR creates a constant-bit-rate source.
func NewCBR(rateBps float64) *CBR { return &CBR{RateBps: rateBps} }

// Step implements TrafficSource.
func (c *CBR) Step(_ uint64, slotDur time.Duration) int64 {
	c.accum += c.RateBps * slotDur.Seconds()
	bits := int64(c.accum)
	c.accum -= float64(bits)
	return bits
}

// FullBuffer keeps the downlink queue saturated: the classic full-buffer
// assumption used to measure scheduler capacity shares.
type FullBuffer struct {
	// BitsPerSlot is how much to offer each slot (default: 1 Mbit).
	BitsPerSlot int64
}

// Step implements TrafficSource.
func (f *FullBuffer) Step(uint64, time.Duration) int64 {
	if f.BitsPerSlot == 0 {
		return 1 << 20
	}
	return f.BitsPerSlot
}

// OnOff alternates exponentially distributed bursts and silences around a
// CBR rate, approximating bursty application traffic (e.g. video chunks).
type OnOff struct {
	RateBps   float64 // rate while ON
	MeanOn    time.Duration
	MeanOff   time.Duration
	rng       *rand.Rand
	on        bool
	remaining time.Duration
	cbr       CBR
}

// NewOnOff creates a bursty source with the given duty cycle and seed.
func NewOnOff(rateBps float64, meanOn, meanOff time.Duration, seed int64) *OnOff {
	o := &OnOff{
		RateBps: rateBps,
		MeanOn:  meanOn,
		MeanOff: meanOff,
		rng:     rand.New(rand.NewSource(seed)),
		on:      true,
	}
	o.cbr.RateBps = rateBps
	o.remaining = o.expDur(meanOn)
	return o
}

func (o *OnOff) expDur(mean time.Duration) time.Duration {
	return time.Duration(o.rng.ExpFloat64() * float64(mean))
}

// Step implements TrafficSource.
func (o *OnOff) Step(slot uint64, slotDur time.Duration) int64 {
	o.remaining -= slotDur
	if o.remaining <= 0 {
		o.on = !o.on
		if o.on {
			o.remaining = o.expDur(o.MeanOn)
		} else {
			o.remaining = o.expDur(o.MeanOff)
		}
	}
	if !o.on {
		return 0
	}
	return o.cbr.Step(slot, slotDur)
}

// Poisson models packet arrivals as a Poisson process with fixed packet
// size, the standard M/D/1-style load model for IoT uplink mirrors.
type Poisson struct {
	// PacketsPerSec is the mean arrival rate.
	PacketsPerSec float64
	// PacketBits is the size of each packet (default 12000 = 1500 B).
	PacketBits int64
	rng        *rand.Rand
}

// NewPoisson creates a Poisson packet source.
func NewPoisson(packetsPerSec float64, packetBits int64, seed int64) *Poisson {
	if packetBits == 0 {
		packetBits = 12000
	}
	return &Poisson{PacketsPerSec: packetsPerSec, PacketBits: packetBits, rng: rand.New(rand.NewSource(seed))}
}

// Step implements TrafficSource.
func (p *Poisson) Step(_ uint64, slotDur time.Duration) int64 {
	lambda := p.PacketsPerSec * slotDur.Seconds()
	// Knuth's algorithm is fine for the small per-slot lambda used here.
	l := expNeg(lambda)
	k := 0
	prod := 1.0
	for {
		prod *= p.rng.Float64()
		if prod <= l {
			break
		}
		k++
		if k > 10000 {
			break
		}
	}
	return int64(k) * p.PacketBits
}

func expNeg(x float64) float64 {
	// exp(-x) via the stdlib; wrapped for clarity at call sites.
	return mathExp(-x)
}

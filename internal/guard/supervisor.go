package guard

import (
	"fmt"
	"sync"
	"time"

	"waran/internal/obs"
	"waran/internal/obs/flight"
	"waran/internal/obs/trace"
	"waran/internal/sched"
	"waran/internal/wabi"
)

// Config tunes a Supervisor. The zero value gets defaults: a 32-request
// shadow-replay ring, a 750 µs per-call shadow latency budget, a 3× slowdown
// bound against the incumbent, and a 256-call post-promotion probation
// window.
type Config struct {
	// Breaker configures the plugin's circuit breaker.
	Breaker BreakerConfig
	// RecordedInputs is how many recent slot requests are retained for
	// shadow validation of hot-swap candidates (default 32).
	RecordedInputs int
	// ShadowLatencyBudget is the per-replay wall-clock cap a candidate must
	// meet during shadow validation (default 750 µs — a decision that slow
	// cannot fit the 1 ms slot alongside the rest of the loop).
	ShadowLatencyBudget time.Duration
	// ShadowSlowdown bounds the candidate's mean shadow latency to this
	// multiple of the incumbent's observed mean (default 3). Only enforced
	// while the incumbent is healthy — a quarantined incumbent is no
	// baseline worth defending.
	ShadowSlowdown float64
	// ProbationCalls is the post-promotion window during which a breaker
	// trip rolls back to the last-known-good scheduler (default 256).
	ProbationCalls int
}

func (c Config) withDefaults() Config {
	if c.RecordedInputs <= 0 {
		c.RecordedInputs = 32
	}
	if c.ShadowLatencyBudget <= 0 {
		c.ShadowLatencyBudget = 750 * time.Microsecond
	}
	if c.ShadowSlowdown <= 0 {
		c.ShadowSlowdown = 3
	}
	if c.ProbationCalls <= 0 {
		c.ProbationCalls = 256
	}
	return c
}

// Supervisor wraps one plugin-backed intra-slice scheduler with the full
// lifecycle: per-class failure metering through a circuit breaker, automatic
// degradation to a native fallback while the breaker is open, half-open
// recovery probes, canary hot-swap with shadow validation against recorded
// slot inputs, and rollback to the last-known-good scheduler if a promoted
// candidate trips the breaker during probation.
//
// Supervisor implements sched.IntraSlice and is safe for concurrent use, so
// parallel cells sharing one plugin share one supervisor — and one breaker,
// so a failure observed by any cell counts exactly once.
type Supervisor struct {
	name     string
	fallback sched.IntraSlice
	cfg      Config
	br       *Breaker
	tracer   *trace.Tracer    // nil = canary swaps are untraced
	flight   *flight.Recorder // nil = lifecycle transitions are unjournaled

	mu        sync.Mutex
	active    sched.IntraSlice
	lastGood  sched.IntraSlice
	recorded  []*sched.Request // ring of deep-copied recent requests
	recHead   int
	recCount  int
	probation int     // remaining probation calls; 0 = out of probation
	latEWMA   float64 // incumbent mean decision latency, µs

	calls         uint64
	successes     uint64
	fallbackSlots uint64
	promotions    uint64
	rollbacks     uint64
	shadowPass    uint64
	shadowFail    uint64
}

// New supervises active, degrading to fallback whenever the breaker rejects
// or the active scheduler fails. fallback must be infallible (a native
// scheduler); its errors are not metered.
func New(name string, active, fallback sched.IntraSlice, cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	return &Supervisor{
		name:     name,
		fallback: fallback,
		cfg:      cfg,
		br:       NewBreaker(cfg.Breaker),
		active:   active,
		recorded: make([]*sched.Request, cfg.RecordedInputs),
	}
}

// Name implements sched.IntraSlice.
func (s *Supervisor) Name() string { return "guard:" + s.name }

// Breaker exposes the circuit breaker for inspection.
func (s *Supervisor) Breaker() *Breaker { return s.br }

// SetTracer attaches the causal tracing layer: subsequent SwapTraced calls
// record a swap.canary span on the gNB plane. Safe to leave nil.
func (s *Supervisor) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// SetFlightRecorder journals the supervisor's lifecycle into rec: breaker
// state transitions (EvBreakerOpen/HalfOpen/Close), sandbox failures by
// class, promoted canary swaps and probation rollbacks. A nil rec detaches.
func (s *Supervisor) SetFlightRecorder(rec *flight.Recorder) {
	s.mu.Lock()
	s.flight = rec
	s.mu.Unlock()
	if rec == nil {
		s.br.SetTransitionHook(nil)
		return
	}
	s.br.SetTransitionHook(func(from, to State) {
		class := flight.EvBreakerClose
		switch to {
		case Open:
			class = flight.EvBreakerOpen
		case HalfOpen:
			class = flight.EvBreakerHalfOpen
		}
		rec.Record(flight.Event{
			Class: class, Plane: flight.PlaneGNB,
			Detail: s.name + ": " + from.String() + "->" + to.String(),
		})
	})
}

// flightRec returns the attached recorder (possibly nil) without holding mu
// across the caller's work.
func (s *Supervisor) flightRec() *flight.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flight
}

// Active returns the currently promoted scheduler.
func (s *Supervisor) Active() sched.IntraSlice {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Schedule implements sched.IntraSlice. The request is recorded for future
// shadow validation, the breaker is consulted, and on any rejection or
// failure the native fallback decides the slot — the slice always gets an
// allocation within native cost.
func (s *Supervisor) Schedule(req *sched.Request) (*sched.Response, error) {
	s.mu.Lock()
	s.calls++
	s.record(req)
	active := s.active
	s.mu.Unlock()

	if s.br.Allow() {
		start := time.Now()
		resp, err := active.Schedule(req)
		s.br.Record(wabi.ClassOf(err))
		if err != nil {
			if rec := s.flightRec(); rec.Enabled() {
				rec.Record(flight.Event{
					Class: flight.EvSandboxFault, Plane: flight.PlaneWasm, Slot: req.Slot,
					Detail: s.name + ": " + wabi.ClassOf(err).String(),
				})
			}
		}
		if err == nil {
			s.mu.Lock()
			s.successes++
			lat := float64(time.Since(start).Nanoseconds()) / 1e3
			if s.latEWMA == 0 {
				s.latEWMA = lat
			} else {
				s.latEWMA = 0.9*s.latEWMA + 0.1*lat
			}
			if s.probation > 0 {
				s.probation--
			}
			s.mu.Unlock()
			return resp, nil
		}
		s.maybeRollback()
	}

	s.mu.Lock()
	s.fallbackSlots++
	s.mu.Unlock()
	return s.fallback.Schedule(req)
}

// record stores a deep copy of req in the replay ring; callers hold mu. The
// copy matters: the slot engine reuses request backing arrays across slots.
func (s *Supervisor) record(req *sched.Request) {
	cp := *req
	cp.UEs = append([]sched.UEInfo(nil), req.UEs...)
	s.recorded[s.recHead] = &cp
	s.recHead = (s.recHead + 1) % len(s.recorded)
	if s.recCount < len(s.recorded) {
		s.recCount++
	}
}

// maybeRollback reverts to the last-known-good scheduler when a promoted
// candidate has tripped the breaker inside its probation window.
func (s *Supervisor) maybeRollback() {
	if s.br.State() != Open {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.probation == 0 || s.lastGood == nil {
		return
	}
	s.active = s.lastGood
	s.lastGood = nil
	s.probation = 0
	s.rollbacks++
	s.flight.Record(flight.Event{
		Class: flight.EvRollback, Plane: flight.PlaneGNB,
		Detail: s.name + ": probation breaker trip, reverted to last-good",
	})
	s.br.Reset()
}

// ShadowReport describes one shadow-validation run of a hot-swap candidate.
type ShadowReport struct {
	Runs           int     `json:"runs"`
	Failures       int     `json:"failures"`
	Promoted       bool    `json:"promoted"`
	Reason         string  `json:"reason,omitempty"`
	CandidateAvgUs float64 `json:"candidate_avg_us"`
	IncumbentAvgUs float64 `json:"incumbent_avg_us"`
}

// Swap shadow-validates candidate against the recorded slot inputs and, on
// pass, promotes it under a fresh breaker and a probation window. The
// incumbent is retained as last-known-good only if it was healthy (closed
// breaker) at swap time — a hot-swap during an open breaker replaces the
// quarantined incumbent, which must never become a rollback target. On
// shadow failure the incumbent stays active and an error is returned.
func (s *Supervisor) Swap(candidate sched.IntraSlice) (*ShadowReport, error) {
	return s.SwapTraced(candidate, trace.Context{})
}

// SwapTraced is Swap carrying a causal trace context: when a tracer is
// attached and ctx belongs to a live trace (a swap ordered by a traced RIC
// control), the whole shadow-replay-and-promote step is recorded as one
// swap.canary span, with rejections captured in the span error.
func (s *Supervisor) SwapTraced(candidate sched.IntraSlice, ctx trace.Context) (rep *ShadowReport, err error) {
	s.mu.Lock()
	tr := s.tracer
	s.mu.Unlock()
	if tr.Enabled() && ctx.Valid() {
		start := time.Now()
		defer func() {
			sp := &trace.Span{
				TraceID: ctx.TraceID, SpanID: trace.NewSpanID(), Parent: ctx.SpanID,
				Name: trace.SpanSwapCanary, Plane: trace.PlaneGNB,
				StartNs: start.UnixNano(), DurNs: int64(time.Since(start)),
			}
			if err != nil {
				sp.Err = err.Error()
			}
			tr.Record(sp)
		}()
	}
	return s.swap(candidate)
}

func (s *Supervisor) swap(candidate sched.IntraSlice) (*ShadowReport, error) {
	s.mu.Lock()
	inputs := make([]*sched.Request, 0, s.recCount)
	// Oldest-first walk of the ring.
	for i := 0; i < s.recCount; i++ {
		idx := (s.recHead - s.recCount + i + len(s.recorded)) % len(s.recorded)
		inputs = append(inputs, s.recorded[idx])
	}
	incumbentAvg := s.latEWMA
	s.mu.Unlock()

	rep := &ShadowReport{Runs: len(inputs), IncumbentAvgUs: incumbentAvg}
	healthy := s.br.State() == Closed

	var total time.Duration
	for _, req := range inputs {
		start := time.Now()
		_, err := candidate.Schedule(req)
		d := time.Since(start)
		total += d
		if err != nil {
			rep.Failures++
			if rep.Reason == "" {
				rep.Reason = fmt.Sprintf("slot %d: %v", req.Slot, err)
			}
			continue
		}
		if d > s.cfg.ShadowLatencyBudget {
			rep.Failures++
			if rep.Reason == "" {
				rep.Reason = fmt.Sprintf("slot %d: %v exceeds shadow budget %v", req.Slot, d, s.cfg.ShadowLatencyBudget)
			}
		}
	}
	if len(inputs) > 0 {
		rep.CandidateAvgUs = float64(total.Nanoseconds()) / 1e3 / float64(len(inputs))
	}
	if rep.Failures > 0 {
		s.recordShadow(false)
		return rep, fmt.Errorf("guard: %s: shadow validation failed %d/%d replays: %s",
			s.name, rep.Failures, rep.Runs, rep.Reason)
	}
	// Enforce the slowdown bound only against a healthy incumbent: if the
	// breaker is open the slice is running on fallback and any correct
	// candidate beats it.
	if healthy && incumbentAvg > 0 && rep.CandidateAvgUs > s.cfg.ShadowSlowdown*incumbentAvg {
		s.recordShadow(false)
		rep.Reason = fmt.Sprintf("candidate mean %.1fµs exceeds %.1f× incumbent mean %.1fµs",
			rep.CandidateAvgUs, s.cfg.ShadowSlowdown, incumbentAvg)
		return rep, fmt.Errorf("guard: %s: %s", s.name, rep.Reason)
	}

	s.mu.Lock()
	if healthy {
		s.lastGood = s.active
	}
	s.active = candidate
	s.probation = s.cfg.ProbationCalls
	s.latEWMA = rep.CandidateAvgUs
	s.promotions++
	s.shadowPass++
	rec := s.flight
	s.mu.Unlock()
	if rec.Enabled() {
		rec.Record(flight.Event{
			Class: flight.EvCanarySwap, Plane: flight.PlaneGNB,
			Detail: fmt.Sprintf("%s: promoted after %d shadow replays", s.name, rep.Runs),
			Value:  rep.CandidateAvgUs,
		})
	}
	s.br.Reset()
	rep.Promoted = true
	return rep, nil
}

func (s *Supervisor) recordShadow(pass bool) {
	s.mu.Lock()
	if pass {
		s.shadowPass++
	} else {
		s.shadowFail++
	}
	s.mu.Unlock()
}

// LastFuelUsed implements sched.FuelReporter by forwarding to the active
// scheduler when it can report fuel.
func (s *Supervisor) LastFuelUsed() int64 {
	s.mu.Lock()
	active := s.active
	s.mu.Unlock()
	if fr, ok := active.(sched.FuelReporter); ok {
		return fr.LastFuelUsed()
	}
	return 0
}

// SupervisorStats is the flat snapshot of a Supervisor.
type SupervisorStats struct {
	Name          string       `json:"name"`
	Active        string       `json:"active"`
	Calls         uint64       `json:"calls"`
	Successes     uint64       `json:"successes"`
	FallbackSlots uint64       `json:"fallback_slots"`
	Promotions    uint64       `json:"promotions"`
	Rollbacks     uint64       `json:"rollbacks"`
	ShadowPass    uint64       `json:"shadow_pass"`
	ShadowFail    uint64       `json:"shadow_fail"`
	Probation     int          `json:"probation"`
	MeanLatencyUs float64      `json:"mean_latency_us"`
	Breaker       BreakerStats `json:"breaker"`
}

// Stats returns current supervisor accounting.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	st := SupervisorStats{
		Name:          s.name,
		Active:        s.active.Name(),
		Calls:         s.calls,
		Successes:     s.successes,
		FallbackSlots: s.fallbackSlots,
		Promotions:    s.promotions,
		Rollbacks:     s.rollbacks,
		ShadowPass:    s.shadowPass,
		ShadowFail:    s.shadowFail,
		Probation:     s.probation,
		MeanLatencyUs: s.latEWMA,
	}
	s.mu.Unlock()
	st.Breaker = s.br.Stats()
	return st
}

// stateValue maps breaker states onto a gauge: 0 closed, 0.5 half-open,
// 1 open — "how quarantined is this plugin".
func stateValue(state string) float64 {
	switch state {
	case "open":
		return 1
	case "half-open":
		return 0.5
	default:
		return 0
	}
}

// Register exposes the supervisor on reg under waran_guard_* with the given
// labels (typically the slice the supervisor protects).
func (s *Supervisor) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_guard", "plugin lifecycle supervisor: breaker state, per-class failures, swaps and rollbacks", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			st := s.Stats()
			samples := []obs.Sample{
				{Suffix: "_breaker_state", Value: stateValue(st.Breaker.State)},
				{Suffix: "_health", Value: st.Breaker.Health},
				{Suffix: "_calls_total", Value: float64(st.Calls)},
				{Suffix: "_successes_total", Value: float64(st.Successes)},
				{Suffix: "_fallback_slots_total", Value: float64(st.FallbackSlots)},
				{Suffix: "_opens_total", Value: float64(st.Breaker.Opens)},
				{Suffix: "_reopens_total", Value: float64(st.Breaker.Reopens)},
				{Suffix: "_probes_total", Value: float64(st.Breaker.Probes)},
				{Suffix: "_probe_fails_total", Value: float64(st.Breaker.ProbeFails)},
				{Suffix: "_promotions_total", Value: float64(st.Promotions)},
				{Suffix: "_rollbacks_total", Value: float64(st.Rollbacks)},
				{Suffix: "_shadow_pass_total", Value: float64(st.ShadowPass)},
				{Suffix: "_shadow_fail_total", Value: float64(st.ShadowFail)},
				{Suffix: "_probation_calls", Value: float64(st.Probation)},
			}
			for _, c := range wabi.FailureClasses() {
				samples = append(samples, obs.Sample{
					Suffix: "_failures_total",
					Labels: []obs.Label{obs.L("class", c.String())},
					Value:  float64(s.br.FailureCount(c)),
				})
			}
			return samples
		},
		JSON: func() any { return s.Stats() },
	}, labels...)
}

package guard_test

import (
	"sync"
	"testing"
	"time"

	"waran/internal/guard"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// vclock is a manually advanced clock so breaker timing is deterministic.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVclock() *vclock { return &vclock{t: time.Unix(0, 0)} }

func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// errTrap builds the classed error a trapped plugin call produces.
func errTrap() error {
	return &wabi.CallError{Entry: "schedule", Trap: &wasm.Trap{Code: wasm.TrapUnreachable}}
}

func errFuel() error {
	return &wabi.CallError{Entry: "schedule", Trap: &wasm.Trap{Code: wasm.TrapFuelExhausted}}
}

// fakeSched is a scriptable IntraSlice: script decides per call (1-based)
// whether it fails and how.
type fakeSched struct {
	name   string
	script func(call int, req *sched.Request) error

	mu    sync.Mutex
	calls int
}

func (f *fakeSched) Name() string { return f.name }

func (f *fakeSched) Schedule(req *sched.Request) (*sched.Response, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if f.script != nil {
		if err := f.script(n, req); err != nil {
			return nil, err
		}
	}
	return &sched.Response{}, nil
}

func (f *fakeSched) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func alwaysFail(err error) func(int, *sched.Request) error {
	return func(int, *sched.Request) error { return err }
}

func testReq(slot uint64) *sched.Request {
	return &sched.Request{SliceID: 1, Slot: slot, PRBBudget: 10, UEs: []sched.UEInfo{
		{ID: 1, MCS: 10, BitsPerPRB: 100, BufferBytes: 1000},
		{ID: 2, MCS: 12, BitsPerPRB: 120, BufferBytes: 1000},
	}}
}

func breakerCfg(clock *vclock) guard.BreakerConfig {
	return guard.BreakerConfig{
		Window:         8,
		MinSamples:     4,
		FailureRate:    0.5,
		Backoff:        10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		ProbeSuccesses: 2,
		Now:            clock.Now,
	}
}

func TestBreakerOpensAtFailureRate(t *testing.T) {
	clock := newVclock()
	br := guard.NewBreaker(breakerCfg(clock))
	// Three failures among four samples: rate 0.75 ≥ 0.5 at MinSamples.
	br.Record(wabi.FailNone)
	br.Record(wabi.FailTrap)
	br.Record(wabi.FailTrap)
	if br.State() != guard.Closed {
		t.Fatalf("opened before MinSamples: %v", br.State())
	}
	br.Record(wabi.FailTrap)
	if br.State() != guard.Open {
		t.Fatalf("state = %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker admitted a call before backoff")
	}
	st := br.Stats()
	if st.Opens != 1 || st.FailuresByClass["trap"] != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clock := newVclock()
	br := guard.NewBreaker(breakerCfg(clock))
	for i := 0; i < 4; i++ {
		br.Record(wabi.FailFuel)
	}
	if br.State() != guard.Open {
		t.Fatal("not open")
	}
	clock.Advance(10 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("probe not admitted after backoff")
	}
	if br.State() != guard.HalfOpen {
		t.Fatalf("state = %v, want half-open", br.State())
	}
	br.Record(wabi.FailNone)
	if !br.Allow() {
		t.Fatal("second probe not admitted")
	}
	br.Record(wabi.FailNone) // ProbeSuccesses=2 → close
	if br.State() != guard.Closed {
		t.Fatalf("state = %v, want closed after %d probe successes", br.State(), 2)
	}
	if !br.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

// TestBreakerProbeFailureDoublesBackoff is the satellite edge case: each
// failed half-open probe re-opens with a doubled backoff, capped.
func TestBreakerProbeFailureDoublesBackoff(t *testing.T) {
	clock := newVclock()
	br := guard.NewBreaker(breakerCfg(clock)) // 10ms initial, 80ms cap
	for i := 0; i < 4; i++ {
		br.Record(wabi.FailTrap)
	}
	wantBackoffs := []time.Duration{
		10 * time.Millisecond, // first open
		20 * time.Millisecond, // after 1st failed probe
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, backoff := range wantBackoffs[:len(wantBackoffs)-1] {
		// Just before the backoff elapses: still rejected.
		clock.Advance(backoff - time.Millisecond)
		if br.Allow() {
			t.Fatalf("round %d: admitted %v before backoff %v", i, backoff-time.Millisecond, backoff)
		}
		clock.Advance(time.Millisecond)
		if !br.Allow() {
			t.Fatalf("round %d: probe rejected after backoff %v", i, backoff)
		}
		br.Record(wabi.FailTrap) // probe fails → reopen, doubled
		next := wantBackoffs[i+1]
		if got := time.Duration(br.Stats().BackoffMs * float64(time.Millisecond)); got != next {
			t.Fatalf("round %d: backoff = %v, want %v", i, got, next)
		}
	}
	st := br.Stats()
	if st.Reopens != 4 || st.ProbeFails != 4 {
		t.Fatalf("reopens=%d probeFails=%d, want 4/4", st.Reopens, st.ProbeFails)
	}
}

func TestBreakerSingleProbeInFlight(t *testing.T) {
	clock := newVclock()
	br := guard.NewBreaker(breakerCfg(clock))
	for i := 0; i < 4; i++ {
		br.Record(wabi.FailTrap)
	}
	clock.Advance(10 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("first probe rejected")
	}
	// Probe in flight: parallel cells must not pile onto a sick plugin.
	if br.Allow() || br.Allow() {
		t.Fatal("second probe admitted while first is in flight")
	}
	br.Record(wabi.FailNone)
	if !br.Allow() {
		t.Fatal("next probe rejected after first resolved")
	}
}

func TestSupervisorFallsBackAndContains(t *testing.T) {
	clock := newVclock()
	hostile := &fakeSched{name: "hostile", script: alwaysFail(errTrap())}
	sup := guard.New("s1", hostile, sched.RoundRobin{}, guard.Config{Breaker: breakerCfg(clock)})

	for slot := uint64(0); slot < 100; slot++ {
		resp, err := sup.Schedule(testReq(slot))
		if err != nil {
			t.Fatalf("slot %d: supervised schedule errored: %v", slot, err)
		}
		if resp == nil {
			t.Fatalf("slot %d: nil response", slot)
		}
	}
	st := sup.Stats()
	if st.Breaker.State != "open" {
		t.Fatalf("breaker = %s, want open", st.Breaker.State)
	}
	// Containment: after the window filled (MinSamples=4 failures) the
	// breaker opened and the hostile plugin stopped being called.
	if hostile.Calls() != 4 {
		t.Fatalf("hostile plugin called %d times, want 4 (then quarantined)", hostile.Calls())
	}
	// Every slot ended on the fallback: the 4 the plugin failed plus the 96
	// the open breaker rejected outright.
	if st.FallbackSlots != 100 {
		t.Fatalf("fallback slots = %d, want 100", st.FallbackSlots)
	}
	if st.Breaker.FailuresByClass["trap"] != 4 {
		t.Fatalf("trap count = %d, want 4", st.Breaker.FailuresByClass["trap"])
	}
}

func TestSupervisorRecoversThroughProbes(t *testing.T) {
	clock := newVclock()
	// Fails its first 4 calls, then recovers for good.
	flaky := &fakeSched{name: "flaky", script: func(call int, _ *sched.Request) error {
		if call <= 4 {
			return errFuel()
		}
		return nil
	}}
	sup := guard.New("s1", flaky, sched.RoundRobin{}, guard.Config{Breaker: breakerCfg(clock)})
	for slot := uint64(0); slot < 10; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
	}
	if sup.Breaker().State() != guard.Open {
		t.Fatal("breaker did not open")
	}
	clock.Advance(10 * time.Millisecond)
	// Two successful probes (ProbeSuccesses=2) close the breaker.
	for slot := uint64(10); slot < 12; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sup.Breaker().State(); got != guard.Closed {
		t.Fatalf("breaker = %v after probes, want closed", got)
	}
	before := flaky.Calls()
	if _, err := sup.Schedule(testReq(99)); err != nil {
		t.Fatal(err)
	}
	if flaky.Calls() != before+1 {
		t.Fatal("re-admitted plugin not serving calls")
	}
}

// TestSupervisorSharedAcrossCellsNoDoubleCount is the satellite edge case:
// parallel cells sharing one supervisor record each plugin failure exactly
// once — the breaker's class counters equal the plugin's own call count.
func TestSupervisorSharedAcrossCellsNoDoubleCount(t *testing.T) {
	clock := newVclock()
	hostile := &fakeSched{name: "hostile", script: alwaysFail(errTrap())}
	cfg := breakerCfg(clock)
	cfg.Window = 1024
	cfg.MinSamples = 1024 // never opens: every call reaches the plugin
	sup := guard.New("s1", hostile, sched.RoundRobin{}, guard.Config{Breaker: cfg})

	const cells, slots = 4, 50
	var wg sync.WaitGroup
	for c := 0; c < cells; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < slots; s++ {
				if _, err := sup.Schedule(testReq(uint64(c*slots + s))); err != nil {
					t.Errorf("cell %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	traps := sup.Breaker().FailureCount(wabi.FailTrap)
	if got := uint64(hostile.Calls()); traps != got {
		t.Fatalf("breaker counted %d traps, plugin failed %d times (double counting)", traps, got)
	}
	if traps != cells*slots {
		t.Fatalf("traps = %d, want %d", traps, cells*slots)
	}
}

func TestSwapRejectsBadCandidate(t *testing.T) {
	clock := newVclock()
	good := &fakeSched{name: "good"}
	sup := guard.New("s1", good, sched.RoundRobin{}, guard.Config{Breaker: breakerCfg(clock)})
	for slot := uint64(0); slot < 16; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
	}
	bad := &fakeSched{name: "bad", script: alwaysFail(errTrap())}
	rep, err := sup.Swap(bad)
	if err == nil {
		t.Fatal("hostile candidate promoted")
	}
	if rep.Promoted || rep.Failures == 0 || rep.Runs != 16 {
		t.Fatalf("report = %+v", rep)
	}
	if sup.Active() != sched.IntraSlice(good) {
		t.Fatal("incumbent displaced by failed shadow run")
	}
	if st := sup.Stats(); st.ShadowFail != 1 || st.Promotions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwapPromotesAndRollsBackDuringProbation(t *testing.T) {
	clock := newVclock()
	good := &fakeSched{name: "good"}
	cfg := guard.Config{Breaker: breakerCfg(clock), ProbationCalls: 64}
	sup := guard.New("s1", good, sched.RoundRobin{}, cfg)
	for slot := uint64(0); slot < 8; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
	}
	// Sleeper: behaves through shadow validation (8 recorded replays), turns
	// hostile afterwards.
	sleeper := &fakeSched{name: "sleeper", script: func(call int, _ *sched.Request) error {
		if call > 10 {
			return errTrap()
		}
		return nil
	}}
	rep, err := sup.Swap(sleeper)
	if err != nil || !rep.Promoted {
		t.Fatalf("promotion failed: %v / %+v", err, rep)
	}
	if sup.Active() != sched.IntraSlice(sleeper) {
		t.Fatal("candidate not active after promotion")
	}

	// Serve slots until the sleeper trips the breaker inside probation.
	for slot := uint64(100); slot < 130; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
		if sup.Stats().Rollbacks > 0 {
			break
		}
	}
	st := sup.Stats()
	if st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", st.Rollbacks)
	}
	if sup.Active() != sched.IntraSlice(good) {
		t.Fatalf("active = %s, want rollback to last-known-good", sup.Active().Name())
	}
	// The rollback resets the breaker, so the restored scheduler serves.
	before := good.Calls()
	if _, err := sup.Schedule(testReq(999)); err != nil {
		t.Fatal(err)
	}
	if good.Calls() != before+1 {
		t.Fatal("restored scheduler not serving after rollback")
	}
}

// TestSwapDuringOpenBreakerTargetsCandidate is the satellite edge case: a
// hot-swap while the incumbent is quarantined promotes the candidate and
// must NOT retain the quarantined incumbent as a rollback target.
func TestSwapDuringOpenBreakerTargetsCandidate(t *testing.T) {
	clock := newVclock()
	hostile := &fakeSched{name: "hostile", script: alwaysFail(errTrap())}
	cfg := guard.Config{Breaker: breakerCfg(clock), ProbationCalls: 64}
	sup := guard.New("s1", hostile, sched.RoundRobin{}, cfg)
	for slot := uint64(0); slot < 20; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
	}
	if sup.Breaker().State() != guard.Open {
		t.Fatal("breaker did not open")
	}

	// Candidate that later turns hostile too: the post-promotion trip must
	// degrade to fallback, not roll back to the quarantined incumbent.
	sleeper := &fakeSched{name: "sleeper", script: func(call int, _ *sched.Request) error {
		if call > 25 {
			return errTrap()
		}
		return nil
	}}
	rep, err := sup.Swap(sleeper)
	if err != nil || !rep.Promoted {
		t.Fatalf("swap during open breaker failed: %v / %+v", err, rep)
	}
	if sup.Active() != sched.IntraSlice(sleeper) {
		t.Fatal("candidate not active")
	}
	hostileCalls := hostile.Calls()

	for slot := uint64(100); slot < 160; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
	}
	if sup.Stats().Rollbacks != 0 {
		t.Fatal("rolled back to a quarantined incumbent")
	}
	if sup.Active() != sched.IntraSlice(sleeper) {
		t.Fatalf("active = %s, want candidate (fallback-degraded)", sup.Active().Name())
	}
	if hostile.Calls() != hostileCalls {
		t.Fatal("quarantined incumbent was called after replacement")
	}
}

func TestSwapEnforcesLatencyBudget(t *testing.T) {
	clock := newVclock()
	good := &fakeSched{name: "good"}
	cfg := guard.Config{Breaker: breakerCfg(clock), ShadowLatencyBudget: time.Millisecond}
	sup := guard.New("s1", good, sched.RoundRobin{}, cfg)
	for slot := uint64(0); slot < 4; slot++ {
		if _, err := sup.Schedule(testReq(slot)); err != nil {
			t.Fatal(err)
		}
	}
	slow := &fakeSched{name: "slow", script: func(int, *sched.Request) error {
		time.Sleep(3 * time.Millisecond)
		return nil
	}}
	if _, err := sup.Swap(slow); err == nil {
		t.Fatal("candidate blowing the shadow latency budget promoted")
	}
	if sup.Active() != sched.IntraSlice(good) {
		t.Fatal("incumbent displaced")
	}
}

// Package guard is the plugin lifecycle supervisor: it watches every call a
// Wasm intra-slice scheduler serves, meters failures by class
// (wabi.FailureClass), opens a circuit breaker when the plugin's health
// degrades, pins the slice to its native fallback while the breaker is open,
// probes for recovery after a backoff, and manages canary hot-swaps with
// shadow validation, probation and automatic rollback to the last-known-good
// scheduler. The slot loop keeps its 1 ms deadline throughout: a quarantined
// plugin costs the slice nothing but the fallback's (native) decision time.
package guard

import (
	"fmt"
	"sync"
	"time"

	"waran/internal/wabi"
)

// State is the circuit breaker state.
type State int

// Breaker states. Closed admits every call; Open rejects all calls until a
// backoff elapses; HalfOpen admits one probe call at a time.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String returns the conventional lowercase label.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig tunes one plugin's circuit breaker. The zero value gets
// defaults suitable for a 1 ms slot cadence: a 32-slot outcome window that
// opens at a 50% failure rate, 50 ms initial backoff doubling to 1 s, and 3
// consecutive probe successes to close again.
type BreakerConfig struct {
	// Window is the sliding outcome window length (default 32).
	Window int
	// MinSamples is how many outcomes the window needs before the failure
	// rate is acted on (default 8) — a single early trap must not quarantine
	// a plugin that has served nothing else.
	MinSamples int
	// FailureRate opens the breaker when the window's failure fraction
	// reaches it (default 0.5).
	FailureRate float64
	// Backoff is the initial open→half-open delay (default 50 ms). Every
	// failed half-open probe doubles it, up to MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 1 s).
	MaxBackoff time.Duration
	// ProbeSuccesses is how many consecutive half-open probes must succeed
	// to close the breaker (default 3).
	ProbeSuccesses int
	// Now is the clock; nil means time.Now. Experiments inject a virtual
	// slot clock so breaker timing is deterministic in slot units.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a sliding-window circuit breaker keyed on wabi failure classes.
// Callers ask Allow before invoking the plugin and Record the classified
// outcome after; the breaker never invokes anything itself. Safe for
// concurrent use — parallel cells sharing one plugin share one breaker, and
// each outcome is recorded exactly once by whichever cell observed it.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	window   []wabi.FailureClass // ring buffer of recent outcomes
	head     int
	count    int
	fails    int // failures currently in the window
	backoff  time.Duration
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	probeOK  int  // consecutive successful probes

	opens      uint64
	reopens    uint64
	probes     uint64
	probeFails uint64
	rejects    uint64
	byClass    map[wabi.FailureClass]uint64

	// onTransition, when set, observes every state change. It is invoked
	// with the breaker lock held: implementations must be non-blocking and
	// must not call back into the breaker (the flight recorder's lock-free
	// Record satisfies both).
	onTransition func(from, to State)
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:     cfg,
		window:  make([]wabi.FailureClass, cfg.Window),
		backoff: cfg.Backoff,
		byClass: make(map[wabi.FailureClass]uint64),
	}
}

// SetTransitionHook installs fn to observe every state change (nil removes
// it). fn runs with the breaker lock held: it must be non-blocking and must
// not call back into the breaker.
func (b *Breaker) SetTransitionHook(fn func(from, to State)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// shift moves the breaker to state to, notifying the hook; callers hold mu.
func (b *Breaker) shift(to State) {
	from := b.state
	b.state = to
	if b.onTransition != nil && from != to {
		b.onTransition(from, to)
	}
}

// State returns the current breaker state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether the caller may invoke the plugin now. Closed admits
// everything. Open admits nothing until the backoff has elapsed, at which
// point the breaker turns half-open and admits a single probe; further
// callers are rejected until that probe's outcome is recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.backoff {
			b.rejects++
			return false
		}
		b.shift(HalfOpen)
		b.probing = true
		b.probeOK = 0
		b.probes++
		return true
	default: // HalfOpen
		if b.probing {
			b.rejects++
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// Record feeds one classified call outcome back (FailNone for success). Every
// Allow()==true call must be followed by exactly one Record.
func (b *Breaker) Record(class wabi.FailureClass) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if class != wabi.FailNone {
		b.byClass[class]++
	}
	switch b.state {
	case HalfOpen:
		b.probing = false
		if class == wabi.FailNone {
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.close()
			}
			return
		}
		// Probe failed: back to open with a doubled (capped) backoff, so a
		// plugin that keeps failing is probed geometrically less often.
		b.probeFails++
		b.reopens++
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
		b.shift(Open)
		b.openedAt = b.cfg.Now()
	case Closed:
		b.push(class)
		if b.count >= b.cfg.MinSamples && b.failureRate() >= b.cfg.FailureRate {
			b.shift(Open)
			b.opens++
			b.openedAt = b.cfg.Now()
		}
	default: // Open: a straggler finishing after the trip; count only.
	}
}

// push adds one outcome to the window ring.
func (b *Breaker) push(class wabi.FailureClass) {
	if b.count == len(b.window) {
		if b.window[b.head] != wabi.FailNone {
			b.fails--
		}
	} else {
		b.count++
	}
	b.window[b.head] = class
	if class != wabi.FailNone {
		b.fails++
	}
	b.head = (b.head + 1) % len(b.window)
}

// failureRate is the window's failure fraction; callers hold mu.
func (b *Breaker) failureRate() float64 {
	if b.count == 0 {
		return 0
	}
	return float64(b.fails) / float64(b.count)
}

// close resets to a healthy closed state; callers hold mu.
func (b *Breaker) close() {
	b.shift(Closed)
	b.probing = false
	b.probeOK = 0
	b.backoff = b.cfg.Backoff
	b.head, b.count, b.fails = 0, 0, 0
}

// Reset forces the breaker closed with a cleared window and initial backoff.
// Cumulative counters are preserved. Used after a validated hot-swap: the
// new plugin starts with a clean slate.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.close()
}

// Health scores the plugin 0..1 as one minus the window failure rate; an
// empty window is perfect health.
func (b *Breaker) Health() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return 1 - b.failureRate()
}

// BreakerStats is the flat snapshot of a Breaker.
type BreakerStats struct {
	State           string            `json:"state"`
	Health          float64           `json:"health"`
	BackoffMs       float64           `json:"backoff_ms"`
	Opens           uint64            `json:"opens"`
	Reopens         uint64            `json:"reopens"`
	Probes          uint64            `json:"probes"`
	ProbeFails      uint64            `json:"probe_fails"`
	Rejects         uint64            `json:"rejects"`
	FailuresByClass map[string]uint64 `json:"failures_by_class,omitempty"`
}

// Stats returns current breaker accounting.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	by := make(map[string]uint64, len(b.byClass))
	for c, n := range b.byClass {
		by[c.String()] = n
	}
	return BreakerStats{
		State:           b.state.String(),
		Health:          1 - b.failureRate(),
		BackoffMs:       float64(b.backoff.Nanoseconds()) / 1e6,
		Opens:           b.opens,
		Reopens:         b.reopens,
		Probes:          b.probes,
		ProbeFails:      b.probeFails,
		Rejects:         b.rejects,
		FailuresByClass: by,
	}
}

// FailureCount returns the cumulative count recorded for one class.
func (b *Breaker) FailureCount(class wabi.FailureClass) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.byClass[class]
}

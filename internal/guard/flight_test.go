package guard_test

import (
	"fmt"
	"testing"
	"time"

	"waran/internal/guard"
	"waran/internal/obs/flight"
	"waran/internal/wabi"
)

// TestBreakerTransitionHook drives one full open → half-open → closed cycle
// and checks the hook observes exactly the transitions, in order, and that
// installing nil detaches it.
func TestBreakerTransitionHook(t *testing.T) {
	clock := newVclock()
	br := guard.NewBreaker(breakerCfg(clock))
	var got []string
	br.SetTransitionHook(func(from, to guard.State) {
		got = append(got, fmt.Sprintf("%s->%s", from, to))
	})

	for i := 0; i < 4; i++ {
		br.Record(wabi.FailTrap)
	}
	clock.Advance(10 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("probe not admitted after backoff")
	}
	br.Record(wabi.FailNone)
	if !br.Allow() {
		t.Fatal("second probe not admitted")
	}
	br.Record(wabi.FailNone)

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}

	br.SetTransitionHook(nil)
	for i := 0; i < 4; i++ {
		br.Record(wabi.FailTrap)
	}
	if len(got) != len(want) {
		t.Fatalf("detached hook still observed transitions: %v", got)
	}
}

// TestSupervisorJournalsBreakerTransitions checks the supervisor's flight
// wiring end to end: metered faults through the supervised schedule path
// must land breaker transitions and sandbox faults in the journal on the
// right planes.
func TestSupervisorJournalsBreakerTransitions(t *testing.T) {
	clock := newVclock()
	bad := &fakeSched{name: "bad", script: alwaysFail(errTrap())}
	sup := guard.New("rr", bad, &fakeSched{name: "native"}, guard.Config{Breaker: breakerCfg(clock)})
	rec := flight.NewRecorder(64)
	sup.SetFlightRecorder(rec)

	for i := 0; i < 4; i++ {
		if _, err := sup.Schedule(testReq(uint64(i))); err != nil {
			t.Fatalf("supervised schedule must fall back, got %v", err)
		}
	}
	if sup.Breaker().State() != guard.Open {
		t.Fatalf("breaker state = %v, want open", sup.Breaker().State())
	}
	if n := rec.Count(flight.EvBreakerOpen); n != 1 {
		t.Fatalf("breaker.open events = %d, want 1", n)
	}
	if n := rec.Count(flight.EvSandboxFault); n == 0 {
		t.Fatal("no sandbox.fault events journaled for metered faults")
	}
	for _, ev := range rec.Tail(16) {
		switch ev.Class {
		case flight.EvBreakerOpen, flight.EvBreakerHalfOpen, flight.EvBreakerClose:
			if ev.Plane != flight.PlaneGNB {
				t.Fatalf("%v on plane %v, want gnb", ev.Class, ev.Plane)
			}
		case flight.EvSandboxFault:
			if ev.Plane != flight.PlaneWasm {
				t.Fatalf("%v on plane %v, want wasm", ev.Class, ev.Plane)
			}
		}
	}
}

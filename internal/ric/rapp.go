package ric

import (
	"fmt"
	"sync"
	"time"

	"waran/internal/e2"
)

// RApp is a non-real-time analytics application (Fig. 2 of the paper: the
// non-RT RIC hosts rApps for network optimization and analytics). An rApp
// inspects measurement history and returns policy guidance as control
// requests — the A1-policy role, carried here over the same control
// vocabulary the E2 path uses.
type RApp interface {
	Name() string
	// Analyze inspects the KPM store and returns guidance (may be empty).
	Analyze(store *KPMStore) []e2.ControlRequest
}

// NonRTRIC hosts rApps and periodically runs them against a KPM store,
// pushing the resulting guidance into a sink (typically GNB.Apply directly
// in-process, or an E2 connection's Send for a remote gNB).
type NonRTRIC struct {
	Store *KPMStore
	// Sink consumes each guidance control request.
	Sink func(e2.ControlRequest) error
	// Interval is the analytics cadence for Run (default 1 s — non-RT).
	Interval time.Duration

	mu      sync.Mutex
	rapps   []RApp
	rounds  uint64
	emitted uint64
	faults  uint64
}

// NewNonRTRIC creates a non-RT RIC over the given store and sink.
func NewNonRTRIC(store *KPMStore, sink func(e2.ControlRequest) error) *NonRTRIC {
	return &NonRTRIC{Store: store, Sink: sink, Interval: time.Second}
}

// AddRApp installs an analytics application.
func (n *NonRTRIC) AddRApp(r RApp) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rapps = append(n.rapps, r)
}

// RunOnce executes every rApp against the current history and pushes the
// guidance to the sink. It returns the number of guidance actions emitted.
func (n *NonRTRIC) RunOnce() (int, error) {
	n.mu.Lock()
	rapps := append([]RApp(nil), n.rapps...)
	n.rounds++
	n.mu.Unlock()

	emitted := 0
	var firstErr error
	for _, r := range rapps {
		for _, c := range r.Analyze(n.Store) {
			if err := n.Sink(c); err != nil {
				n.mu.Lock()
				n.faults++
				n.mu.Unlock()
				if firstErr == nil {
					firstErr = fmt.Errorf("ric: rApp %q guidance rejected: %w", r.Name(), err)
				}
				continue
			}
			emitted++
		}
	}
	n.mu.Lock()
	n.emitted += uint64(emitted)
	n.mu.Unlock()
	return emitted, firstErr
}

// Run executes rApps on the configured cadence until stop closes.
func (n *NonRTRIC) Run(stop <-chan struct{}) {
	interval := n.Interval
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_, _ = n.RunOnce()
		}
	}
}

// Counters reports analytics rounds, guidance emitted, and sink rejections.
func (n *NonRTRIC) Counters() (rounds, emitted, faults uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rounds, n.emitted, n.faults
}

// SLATuner is the built-in rApp: it watches each slice's SLA compliance
// over the recorded history and retunes inter-slice weights — a persistent
// under-achiever gets weight 2.0, a comfortable over-achiever is relaxed
// back to 1.0. This is the slow-timescale complement to the fast SLA xApp.
type SLATuner struct {
	// Window is how many recent indications to consider (default 20).
	Window int
	// ComplianceFrac is the served/target ratio counted as "met"
	// (default 0.9).
	ComplianceFrac float64

	// lastWeight avoids re-sending unchanged guidance.
	lastWeight map[uint32]float64
}

// Name implements RApp.
func (s *SLATuner) Name() string { return "sla-tuner" }

// Analyze implements RApp.
func (s *SLATuner) Analyze(store *KPMStore) []e2.ControlRequest {
	window := s.Window
	if window <= 0 {
		window = 20
	}
	frac := s.ComplianceFrac
	if frac <= 0 {
		frac = 0.9
	}
	if s.lastWeight == nil {
		s.lastWeight = make(map[uint32]float64)
	}

	var out []e2.ControlRequest
	for _, cell := range store.Cells() {
		history := store.History(cell, window)
		if len(history) < window/2 {
			continue // not enough evidence yet
		}
		met := map[uint32]int{}
		total := map[uint32]int{}
		for _, si := range history {
			for _, sl := range si.Indication.Slices {
				if sl.TargetBps <= 0 {
					continue
				}
				total[sl.SliceID]++
				if sl.ServedBps >= frac*sl.TargetBps {
					met[sl.SliceID]++
				}
			}
		}
		for sliceID, n := range total {
			compliance := float64(met[sliceID]) / float64(n)
			want := s.lastWeight[sliceID]
			if want == 0 {
				want = 1.0
			}
			switch {
			case compliance < 0.5:
				want = 2.0
			case compliance > 0.95:
				want = 1.0
			}
			if want != s.lastWeight[sliceID] || s.lastWeight[sliceID] == 0 {
				if prev, seen := s.lastWeight[sliceID]; !seen || prev != want {
					out = append(out, e2.ControlRequest{
						Action:  e2.ActionSetSliceWeight,
						SliceID: sliceID,
						Value:   want,
					})
					s.lastWeight[sliceID] = want
				}
			}
		}
	}
	return out
}

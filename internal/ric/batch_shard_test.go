package ric

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"waran/internal/e2"
)

// seqRAN is a deterministic RANControl whose KPM snapshots vary per call:
// the nth snapshot is a pure function of n. Two associations driven the
// same number of ticks therefore produce identical indication sequences iff
// every report survives its path to the xApp boundary byte-for-byte.
type seqRAN struct {
	mu sync.Mutex
	n  uint64
}

func (s *seqRAN) Snapshot(cell uint32) *e2.Indication {
	s.mu.Lock()
	s.n++
	n := s.n
	s.mu.Unlock()
	return &e2.Indication{
		Slot: n,
		Cell: cell,
		UEs: []e2.UEMeasurement{
			{UEID: 1, SliceID: 1, MCS: int32(n % 28), BufferBytes: uint32(n * 100), TputBps: float64(n) * 1e4},
			{UEID: 2, SliceID: 1, MCS: int32((n + 7) % 28), BufferBytes: uint32(n), TputBps: float64(n) * 3e3},
		},
		Slices: []e2.SliceMeasurement{
			{SliceID: 1, TargetBps: 10e6, ServedBps: float64(n) * 1.3e4, UsedPRBs: uint32(n % 52)},
		},
	}
}

func (s *seqRAN) Apply(c *e2.ControlRequest) error { return nil }

// servedRIC starts a RIC serving a listener and returns it with the address
// to dial; teardown is registered on t.
func servedRIC(t *testing.T, cfg Config) (*RIC, string) {
	t.Helper()
	r := MustNew(cfg)
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = r.Serve(lis, stop)
	}()
	t.Cleanup(func() {
		close(stop)
		<-serveDone
		lis.Close()
	})
	return r, lis.Addr().String()
}

// startAgent dials addr and completes the agent-side handshake.
func startAgent(t *testing.T, addr string, ran RANControl, cfg AgentConfig) *Agent {
	t.Helper()
	conn, err := e2.Dial(addr, e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	a, err := NewAgent(conn, ran, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Start(); err != nil {
		t.Fatal(err)
	}
	return a
}

// waitIndications polls until the RIC has processed want indications.
func waitIndications(t *testing.T, r *RIC, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := r.Stats().Indications; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("RIC processed %d indications, want %d", r.Stats().Indications, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// xappBoundaryBytes re-encodes the RIC's recorded indication history for one
// cell exactly as HandleIndication presents it to xApps.
func xappBoundaryBytes(r *RIC, cell uint32) [][]byte {
	var out [][]byte
	for _, si := range r.KPM.History(cell, 0) {
		out = append(out, e2.AppendIndicationBody(nil, si.Indication))
	}
	return out
}

// runReports drives one association for reports indication cadences and
// returns the RIC after it has consumed everything. Batching (or not) is
// decided entirely by the two configs under test.
func runReports(t *testing.T, ricCfg Config, agentCfg AgentConfig, reports int) (*RIC, *Agent) {
	t.Helper()
	ricCfg.ReportPeriodMs = 1 // every slot is a report slot
	r, addr := servedRIC(t, ricCfg)
	a := startAgent(t, addr, &seqRAN{}, agentCfg)
	for slot := uint64(0); slot < uint64(reports); slot++ {
		if err := a.Tick(slot); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	waitIndications(t, r, uint64(reports))
	return r, a
}

// TestBatchedDeliveryBitIdenticalAtXAppBoundary is the differential pin for
// windowed batching: the same deterministic report sequence is driven once
// over an unbatched association and once over a batched one (a window that
// stays partial at teardown, so the Flush path is covered too), and the
// per-slot indication bytes at the xApp boundary must match exactly, in
// order. Batching is transparent to xApps or it is broken.
func TestBatchedDeliveryBitIdenticalAtXAppBoundary(t *testing.T) {
	const cell, reports = 7, 22 // 22 = 5 windows of 4 + a flushed partial of 2

	plain, pa := runReports(t, Config{}, AgentConfig{Cell: cell}, reports)
	if pa.Batched() {
		t.Fatal("window-1 agent negotiated batching")
	}
	batched, ba := runReports(t, Config{}, AgentConfig{Cell: cell, Batch: BatchConfig{Window: 4, FlushInterval: time.Hour}}, reports)
	if !ba.Batched() {
		t.Fatal("batch-capable pair failed to negotiate batching")
	}
	if got := batched.Stats().BatchFrames; got != 6 {
		t.Fatalf("batched run produced %d frames, want 6 (5 full + 1 flushed partial)", got)
	}
	if got := plain.Stats().BatchFrames; got != 0 {
		t.Fatalf("unbatched run produced %d batch frames, want 0", got)
	}

	want := xappBoundaryBytes(plain, cell)
	got := xappBoundaryBytes(batched, cell)
	if len(want) != reports || len(got) != reports {
		t.Fatalf("boundary sequences %d/%d indications, want %d", len(want), len(got), reports)
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("indication %d differs at the xApp boundary:\nunbatched %x\nbatched   %x", i, want[i], got[i])
		}
	}
}

// TestBatchRICInteropsWithUnbatchedAgent covers one capability direction: a
// batch-capable RIC against an agent that never configured batching. The
// agent must not answer the capability token, frames stay per-slot, and the
// association works end to end.
func TestBatchRICInteropsWithUnbatchedAgent(t *testing.T) {
	const reports = 10
	r, a := runReports(t, Config{}, AgentConfig{Cell: 3}, reports)
	if a.Batched() {
		t.Fatal("unbatched agent claims a batched association")
	}
	if frames := a.BatchFrames(); frames != 0 {
		t.Fatalf("unbatched agent sent %d batch frames", frames)
	}
	s := r.Stats()
	if s.Indications != reports || s.BatchFrames != 0 {
		t.Fatalf("RIC saw %d indications / %d batch frames, want %d / 0", s.Indications, s.BatchFrames, reports)
	}
}

// TestBatchAgentInteropsWithNonBatchRIC covers the other direction: an agent
// configured for batching against a RIC that disabled it. Without the
// advertised bit the agent must keep sending per-slot indications — never a
// frame the RIC does not expect.
func TestBatchAgentInteropsWithNonBatchRIC(t *testing.T) {
	const reports = 10
	r, a := runReports(t, Config{DisableBatching: true},
		AgentConfig{Cell: 3, Batch: BatchConfig{Window: 4}}, reports)
	if a.Batched() {
		t.Fatal("agent negotiated batching against a DisableBatching RIC")
	}
	if frames := a.BatchFrames(); frames != 0 {
		t.Fatalf("agent sent %d batch frames to a non-batch RIC", frames)
	}
	if pend := a.PendingBatched(); pend != 0 {
		t.Fatalf("agent buffered %d indications it can never batch", pend)
	}
	s := r.Stats()
	if s.Indications != reports || s.BatchFrames != 0 {
		t.Fatalf("RIC saw %d indications / %d batch frames, want %d / 0", s.Indications, s.BatchFrames, reports)
	}
}

// TestShardedFanInDistributesAndCounts hammers a sharded RIC with concurrent
// batched associations (run with -race): every association lands on a shard,
// the per-shard counters sum exactly to the fleet totals, and the hash
// spreads associations across more than one shard.
func TestShardedFanInDistributesAndCounts(t *testing.T) {
	const (
		agents    = 16
		reports   = 8
		window    = 4
		wantInds  = agents * reports
		wantFrame = agents * reports / window
	)
	r, addr := servedRIC(t, Config{Shards: 4, ReportPeriodMs: 1})

	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for i := 0; i < agents; i++ {
		a := startAgent(t, addr, &seqRAN{}, AgentConfig{
			Cell:  uint32(i),
			Batch: BatchConfig{Window: window, FlushInterval: time.Hour},
		})
		wg.Add(1)
		go func(a *Agent) {
			defer wg.Done()
			for slot := uint64(0); slot < reports; slot++ {
				if err := a.Tick(slot); err != nil {
					errs <- err
					return
				}
			}
			errs <- a.Flush()
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	waitIndications(t, r, wantInds)

	s := r.Stats()
	if s.Indications != wantInds || s.BatchFrames != wantFrame {
		t.Fatalf("totals %d indications / %d frames, want %d / %d", s.Indications, s.BatchFrames, wantInds, wantFrame)
	}
	if s.LiveAssociations != agents || s.RefusedAssociations != 0 {
		t.Fatalf("live %d refused %d, want %d / 0", s.LiveAssociations, s.RefusedAssociations, agents)
	}
	var sumAssoc, sumInds, sumFrames uint64
	populated := 0
	for _, sh := range r.ShardStats() {
		sumAssoc += sh.Associations
		sumInds += sh.Indications
		sumFrames += sh.BatchFrames
		if sh.Associations > 0 {
			populated++
		}
	}
	if sumAssoc != agents || sumInds != wantInds || sumFrames != wantFrame {
		t.Fatalf("shard sums %d/%d/%d do not match totals %d/%d/%d",
			sumAssoc, sumInds, sumFrames, agents, wantInds, wantFrame)
	}
	if populated < 2 {
		t.Fatalf("all %d associations hashed onto one shard of %d", agents, len(r.ShardStats()))
	}
}

// TestShardBudgetRefusesWithErrorFrame pins the overload contract: an
// association arriving at a full shard is turned away with an explicit e2
// error frame naming the exhausted budget — not a silent close — and the
// refusal is counted without disturbing the association already served.
func TestShardBudgetRefusesWithErrorFrame(t *testing.T) {
	r, addr := servedRIC(t, Config{Shards: 1, MaxAssocPerShard: 1, ReportPeriodMs: 1})

	first := startAgent(t, addr, &seqRAN{}, AgentConfig{Cell: 1})
	if first.Period() == 0 {
		t.Fatal("first association not subscribed")
	}

	over, err := e2.Dial(addr, e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	m, err := over.Recv()
	if err != nil {
		t.Fatalf("refused association got no frame: %v", err)
	}
	if m.Type != e2.TypeError {
		t.Fatalf("refused association got %s, want an error frame", m.Type)
	}
	if !strings.Contains(m.Error.Reason, "budget") {
		t.Fatalf("refusal reason %q does not name the budget", m.Error.Reason)
	}

	s := r.Stats()
	if s.RefusedAssociations != 1 || s.LiveAssociations != 1 {
		t.Fatalf("refused %d live %d, want 1 / 1", s.RefusedAssociations, s.LiveAssociations)
	}
	// The served association is undisturbed.
	if err := first.Tick(0); err != nil {
		t.Fatal(err)
	}
	waitIndications(t, r, 1)
}

// TestShardStatsCoverEveryShard pins the observability shape: ShardStats
// returns exactly Config.Shards entries, ordered and labelled by shard ID.
func TestShardStatsCoverEveryShard(t *testing.T) {
	r := MustNew(Config{Shards: 5})
	stats := r.ShardStats()
	if len(stats) != 5 {
		t.Fatalf("ShardStats returned %d entries, want 5", len(stats))
	}
	for i, s := range stats {
		if s.Shard != i {
			t.Fatalf("entry %d labelled shard %d", i, s.Shard)
		}
		if s.Associations != 0 || s.LiveAssociations != 0 {
			t.Fatalf("fresh shard %d reports activity: %+v", i, s)
		}
	}
}

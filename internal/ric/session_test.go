package ric

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// fakeRAN is a minimal RANControl for agent-level tests.
type fakeRAN struct {
	mu      sync.Mutex
	applied []e2.ControlRequest
}

func (f *fakeRAN) Snapshot(cell uint32) *e2.Indication {
	return &e2.Indication{
		Cell: cell,
		Slices: []e2.SliceMeasurement{
			{SliceID: 1, TargetBps: 10e6, ServedBps: 1e6},
			{SliceID: 2, TargetBps: 10e6, ServedBps: 1e6},
		},
	}
}

func (f *fakeRAN) Apply(c *e2.ControlRequest) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applied = append(f.applied, *c)
	return nil
}

// agentPair connects a fake RIC end (returned raw) to an Agent; an
// optional config overrides the default (cell 1, no liveness bound).
func agentPair(t *testing.T, cfg ...AgentConfig) (ricEnd *e2.Conn, agent *Agent, ran *fakeRAN) {
	t.Helper()
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		ricEnd = c
	}()
	client, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	t.Cleanup(func() {
		client.Close()
		if ricEnd != nil {
			ricEnd.Close()
		}
	})
	ran = &fakeRAN{}
	ac := AgentConfig{Cell: 1}
	if len(cfg) > 0 {
		ac = cfg[0]
	}
	agent, err = NewAgent(client, ran, ac)
	if err != nil {
		t.Fatal(err)
	}
	return ricEnd, agent, ran
}

func subscribe(t *testing.T, ricEnd *e2.Conn, reqID uint32, periodMs uint32, slices []uint32) {
	t.Helper()
	err := ricEnd.Send(&e2.Message{
		Type:         e2.TypeSubscriptionRequest,
		RequestID:    reqID,
		RANFunction:  e2.RANFunctionKPM,
		Subscription: &e2.SubscriptionRequest{ReportPeriodMs: periodMs, SliceIDs: slices},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func expectAck(t *testing.T, ricEnd *e2.Conn, reqID uint32) {
	t.Helper()
	m, err := ricEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != e2.TypeSubscriptionResponse || m.RequestID != reqID || !m.SubscriptionResp.Accepted {
		t.Fatalf("got %v/%d (%+v), want accepted subscription-response %d", m.Type, m.RequestID, m.SubscriptionResp, reqID)
	}
}

// TestServeConnStopReturnsPromptly is the regression test for the stop
// hang: a ServeConn blocked in Recv on a silent peer must return promptly
// when stop closes, not wait for the next frame.
func TestServeConnStopReturnsPromptly(t *testing.T) {
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan *e2.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- MustNew(Config{}).ServeConn(server, stop) }()
	// Consume the subscription so ServeConn is provably blocked in Recv,
	// then go silent.
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeConn returned %v after stop, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ServeConn hung after stop was closed")
	}
}

// TestRICHeartbeatLivenessDeclaresDead verifies the RIC-side watchdog: a
// peer that subscribes and then goes silent is declared dead after the
// missed-heartbeat limit and ServeConn returns e2.ErrAssociationDead.
func TestRICHeartbeatLivenessDeclaresDead(t *testing.T) {
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan *e2.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted

	assoc := &AssocMetrics{}
	r := MustNew(Config{HeartbeatInterval: 2 * time.Millisecond, Assoc: assoc})
	stop := make(chan struct{})
	defer close(stop)
	done := make(chan error, 1)
	go func() { done <- r.ServeConn(server, stop) }()
	// Read the subscription, never answer, never echo heartbeats.
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, e2.ErrAssociationDead) {
			t.Fatalf("ServeConn returned %v, want ErrAssociationDead", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("silent peer was never declared dead")
	}
	if got := assoc.MissedHeartbeats.Value(); got < DefaultMissedHeartbeatLimit {
		t.Fatalf("MissedHeartbeats = %d, want >= %d", got, DefaultMissedHeartbeatLimit)
	}
	if got := assoc.DeadAssociations.Value(); got != 1 {
		t.Fatalf("DeadAssociations = %d, want 1", got)
	}
}

// TestAgentResubscribe verifies a mid-association subscription request
// updates the cadence and slice filter and is re-acked, instead of being
// silently dropped.
func TestAgentResubscribe(t *testing.T) {
	ricEnd, agent, _ := agentPair(t)
	subscribe(t, ricEnd, 1, 10, nil)
	if _, err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	expectAck(t, ricEnd, 1)
	if got := agent.Period(); got != 10 {
		t.Fatalf("period = %d, want 10", got)
	}

	// Re-subscribe with a new cadence and a slice filter.
	subscribe(t, ricEnd, 2, 25, []uint32{2})
	expectAck(t, ricEnd, 2)
	if got := agent.Period(); got != 25 {
		t.Fatalf("period after re-subscribe = %d, want 25", got)
	}
	if got := agent.Resubscribes(); got != 1 {
		t.Fatalf("resubscribes = %d, want 1", got)
	}

	// The new filter is applied: the next indication carries only slice 2.
	if err := agent.Tick(25); err != nil {
		t.Fatal(err)
	}
	m, err := ricEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != e2.TypeIndication {
		t.Fatalf("got %v, want indication", m.Type)
	}
	if len(m.Indication.Slices) != 1 || m.Indication.Slices[0].SliceID != 2 {
		t.Fatalf("filtered indication slices = %+v, want only slice 2", m.Indication.Slices)
	}
}

// TestAgentRepliesErrorToUnknownType verifies out-of-place messages get a
// TypeError reply instead of a silent drop.
func TestAgentRepliesErrorToUnknownType(t *testing.T) {
	ricEnd, agent, _ := agentPair(t)
	subscribe(t, ricEnd, 1, 10, nil)
	if _, err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	expectAck(t, ricEnd, 1)

	// An indication makes no sense inbound at the agent.
	err := ricEnd.Send(&e2.Message{
		Type: e2.TypeIndication, RequestID: 77, RANFunction: e2.RANFunctionKPM,
		Indication: &e2.Indication{Slot: 1, Cell: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ricEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != e2.TypeError || m.RequestID != 77 {
		t.Fatalf("got %v/%d, want error reply to request 77", m.Type, m.RequestID)
	}
	if !strings.Contains(m.Error.Reason, "unexpected") {
		t.Fatalf("error reason %q does not explain the unexpected type", m.Error.Reason)
	}
}

// TestAgentLivenessDeclaresDead verifies the agent-side watchdog tears the
// association down when the RIC goes silent.
func TestAgentLivenessDeclaresDead(t *testing.T) {
	ricEnd, agent, _ := agentPair(t, AgentConfig{Cell: 1, LivenessTimeout: 10 * time.Millisecond})
	subscribe(t, ricEnd, 1, 10, nil)
	done, err := agent.Start()
	if err != nil {
		t.Fatal(err)
	}
	expectAck(t, ricEnd, 1)
	// Go silent: no heartbeats, nothing.
	select {
	case err := <-done:
		if !errors.Is(err, e2.ErrAssociationDead) {
			t.Fatalf("recv loop returned %v, want ErrAssociationDead", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent never declared the silent RIC dead")
	}
}

// TestPluginCodecConcurrent hammers one PluginCodec from concurrent
// encoders and decoders — the e2.Conn contract allows concurrent Send and
// a simultaneous Recv, so the single-threaded plugin underneath must be
// serialized. Run with -race.
func TestPluginCodecConcurrent(t *testing.T) {
	codec, err := NewPluginCodecWAT("pass", plugins.PassthroughCommWAT, e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	msg := &e2.Message{
		Type: e2.TypeIndication, RequestID: 5, RANFunction: e2.RANFunctionKPM,
		Indication: &e2.Indication{
			Slot: 9, Cell: 3,
			Slices: []e2.SliceMeasurement{{SliceID: 1, TargetBps: 10e6, ServedBps: 9e6}},
		},
	}
	wire, err := codec.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					if _, err := codec.Encode(msg); err != nil {
						t.Error(err)
						return
					}
				} else {
					got, err := codec.Decode(wire)
					if err != nil {
						t.Error(err)
						return
					}
					if got.Indication == nil || got.Indication.Slot != 9 {
						t.Errorf("concurrent decode corrupted message: %+v", got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBackoffDelay pins the backoff schedule: exponential growth, a hard
// cap, and bounded jitter.
func TestBackoffDelay(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	j := Backoff{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.2}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		got := j.Delay(1, rng)
		if got < 16*time.Millisecond || got > 24*time.Millisecond {
			t.Fatalf("jittered Delay(1) = %v, want within ±20%% of 20ms", got)
		}
	}
}

// TestAgentSessionDegradesWithoutRIC verifies the slot loop never stalls
// when no RIC is reachable: Tick returns immediately while the supervisor
// keeps retrying in the background.
func TestAgentSessionDegradesWithoutRIC(t *testing.T) {
	sess, err := NewAgentSession(AgentSessionConfig{
		Dial:    func() (*e2.Conn, error) { return nil, errors.New("no ric anywhere") },
		RAN:     &fakeRAN{},
		Agent:   AgentConfig{Cell: 1},
		Backoff: Backoff{Initial: time.Millisecond, Max: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.Start()
	defer sess.Stop()
	start := time.Now()
	for slot := uint64(0); slot < 10000; slot++ {
		sess.Tick(slot)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("10000 degraded ticks took %v: the slot loop is stalling on the dead RIC", elapsed)
	}
	if sess.Connected() {
		t.Fatal("session claims to be connected to a nonexistent RIC")
	}
}

// TestE2EFaultyAssociationRecovers drives a real gNB and RIC through a
// fault storm — a half-open association, a forced reset, and a lossy
// connection — and asserts the association is re-established with backoff,
// re-subscribed, and delivering control actions again on the surviving
// connection, while the gNB's slot loop never stalls.
func TestE2EFaultyAssociationRecovers(t *testing.T) {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	// Over-ambitious target so the SLA xApp emits controls every report.
	slice, err := gnb.Slices.AddSlice(1, "tenant", 100e6, rr, nil)
	if err != nil {
		t.Fatal(err)
	}
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(3e6)
	if err := gnb.AttachUE(ue); err != nil {
		t.Fatal(err)
	}

	res, err := RunE2Faults(E2FaultsConfig{
		Slots:     2000,
		Heartbeat: 3 * time.Millisecond,
		Pacing:    100 * time.Microsecond,
		Seed:      7,
		Faults: []e2.FaultConfig{
			{BlackholeAfterWrites: 31}, // half-open: only liveness catches it
			{ResetAfterWrites: 25},     // abrupt reset mid-association
			{DropProb: 0.2},            // lossy: desyncs the RIC's framing
		},
	}, gnb, func(uint64) { gnb.Step() })
	if err != nil {
		t.Fatal(err)
	}

	if res.Associations < 4 {
		t.Fatalf("associations = %d, want >= 4 (three faulty conns plus a clean survivor)", res.Associations)
	}
	if res.Assoc.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want >= 3", res.Assoc.Reconnects)
	}
	if res.Assoc.MissedHeartbeats < DefaultMissedHeartbeatLimit {
		t.Fatalf("missed heartbeats = %d, want >= %d (the half-open conn is only catchable by liveness)",
			res.Assoc.MissedHeartbeats, DefaultMissedHeartbeatLimit)
	}
	if res.Assoc.DeadAssociations < 1 {
		t.Fatalf("dead associations = %d, want >= 1", res.Assoc.DeadAssociations)
	}
	if res.Assoc.DegradedMs <= 0 {
		t.Fatal("no degraded time recorded across three teardowns")
	}
	if res.FaultBlackholes < 1 || res.FaultResets < 1 || res.FaultDrops < 1 {
		t.Fatalf("fault mix not exercised: %+v", res)
	}
	if res.FinalAssocControlsOK == 0 {
		t.Fatal("no control was applied on the surviving association: recovery unproven")
	}
	if res.Resubscribes != 0 {
		// Re-subscription here happens via fresh associations; explicit
		// mid-association re-subscribe is covered by TestAgentResubscribe.
		t.Logf("mid-association resubscribes: %d", res.Resubscribes)
	}
	// The SLA xApp's guidance landed after recovery: the under-target
	// slice runs boosted.
	if w := slice.Weight(); w != 2.0 {
		t.Fatalf("slice weight = %v, want 2.0 (xApp control applied post-recovery)", w)
	}
}

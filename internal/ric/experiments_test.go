package ric

import (
	"testing"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/obs"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// TestE2FaultsExperimentRegistered checks that linking ric puts the
// association-resilience experiment into core's registry.
func TestE2FaultsExperimentRegistered(t *testing.T) {
	e, ok := core.LookupExperiment("e2faults")
	if !ok {
		t.Fatalf("e2faults not registered; have %v", core.ExperimentNames())
	}
	if e.Describe() == "" {
		t.Fatal("e2faults has no description")
	}
}

// TestRunE2FaultsEmbedsSnapshot runs a short, single-fault storm with an
// instrumented config and checks the result carries the registry snapshot
// with the RIC and association instrument classes populated.
func TestRunE2FaultsEmbedsSnapshot(t *testing.T) {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gnb.Slices.AddSlice(1, "tenant", 100e6, rr, nil); err != nil {
		t.Fatal(err)
	}
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(3e6)
	if err := gnb.AttachUE(ue); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	res, err := RunE2Faults(E2FaultsConfig{
		Slots:     400,
		Heartbeat: 3 * time.Millisecond,
		Pacing:    100 * time.Microsecond,
		Seed:      3,
		Faults:    []e2.FaultConfig{{ResetAfterWrites: 25}},
		Obs:       reg,
	}, gnb, func(uint64) { gnb.Step() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("result has no registry snapshot")
	}
	for _, key := range []string{"waran_ric", "waran_e2_assoc"} {
		if _, ok := res.Obs[key]; !ok {
			t.Errorf("snapshot missing %q; registry has %v", key, reg.SeriesNames())
		}
	}
	if res.Assoc.Reconnects == 0 {
		t.Fatalf("no reconnects after a forced reset: %+v", res.Assoc)
	}
}

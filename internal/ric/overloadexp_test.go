package ric

import (
	"testing"
	"time"
)

// TestRunOverloadSmall runs the full overload chaos experiment at reduced
// scale: the fleet must fully reassociate after the kill+restart, both shed
// ledgers must conserve exactly, and the guarded dwell arm must isolate the
// stalling xApp (breaker open, not quarantined) while sustaining more useful
// control throughput than the unguarded arm.
func TestRunOverloadSmall(t *testing.T) {
	res, err := RunOverload(OverloadExpConfig{
		Agents:         32,
		Shards:         4,
		AdmitRate:      100,
		AdmitBurst:     2,
		RetryAfter:     80 * time.Millisecond,
		ReportPeriodMs: 4,
		Warmup:         200 * time.Millisecond,
		Outage:         150 * time.Millisecond,
		RampBound:      20 * time.Second,
		Pacing:         500 * time.Microsecond,
		Dwell:          1200 * time.Millisecond,
		DwellAgents:    12,
		StallIters:     600_000,
		XAppDeadline:   time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatalf("RunOverload: %v (result %+v)", err, res)
	}

	// Mass recovery: everyone back, and the 99% mark recorded.
	if res.Reassociated != res.Agents {
		t.Fatalf("only %d/%d sessions reassociated", res.Reassociated, res.Agents)
	}
	if res.Reassoc99Ms <= 0 {
		t.Fatalf("no 99%% reassociation mark recorded: %+v", res)
	}
	// The admission gate must have actually turned connections away (burst 2
	// on 4 shards against a 32-agent stampede).
	if res.BusyRefusals == 0 {
		t.Fatal("admission gate never refused a connection — storm not gated")
	}
	if !res.LedgerConserved {
		t.Fatalf("shed ledger violated: pre-kill %+v post %+v", res.LedgerPreKill, res.Ledger)
	}
	if res.LedgerPreKill.Offered == 0 || res.Ledger.Offered == 0 {
		t.Fatalf("a ledger saw no offered indications: pre-kill %+v post %+v",
			res.LedgerPreKill, res.Ledger)
	}

	// Slow-xApp isolation: with the guard on the breaker opens and skips the
	// stall instead of quarantining the xApp.
	on, off := res.GuardOn, res.GuardOff
	if on.SlowSkipped == 0 {
		t.Fatalf("guard-on arm never skipped the stalled xApp: %+v", on)
	}
	if on.SlowDisabled {
		t.Fatalf("guard-on arm quarantined the xApp instead of breaking it: %+v", on)
	}
	if on.SlowBreaker != "open" && on.SlowBreaker != "half-open" {
		t.Fatalf("guard-on breaker state %q, want open/half-open", on.SlowBreaker)
	}
	// The guarded arm keeps useful work flowing around the stall; the
	// unguarded arm serializes on it. The margin is enormous in practice
	// (orders of magnitude); 2x keeps the assertion robust on loaded boxes.
	if off.ControlsPerSec*2 > on.ControlsPerSec {
		t.Fatalf("guard-on controls/sec %.1f not clearly above guard-off %.1f",
			on.ControlsPerSec, off.ControlsPerSec)
	}
	if off.SlowSkipped != 0 || off.SlowBreaker != "" {
		t.Fatalf("guard-off arm unexpectedly guarded: %+v", off)
	}
	t.Logf("reassoc99=%.0fms reassoc100=%.0fms wave=%.2f busyRefusals=%d", res.Reassoc99Ms,
		res.Reassoc100Ms, res.MaxWaveFraction, res.BusyRefusals)
	t.Logf("guard on:  tickP99=%.2fms controls/s=%.0f slow{inv=%d skip=%d breaker=%s}",
		on.TickP99Ms, on.ControlsPerSec, on.SlowInvocations, on.SlowSkipped, on.SlowBreaker)
	t.Logf("guard off: tickP99=%.2fms controls/s=%.0f slow{inv=%d}",
		off.TickP99Ms, off.ControlsPerSec, off.SlowInvocations)
}

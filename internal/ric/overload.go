package ric

// Overload control and mass-recovery (DESIGN.md §17): admission token
// buckets and TypeBusy refusals at the front door, bounded per-association
// indication queues with an explicit shed policy behind it, a three-level
// brownout state machine driving report-period widening / stale shedding /
// subscription refusal, and per-xApp breakers + dispatch deadlines so one
// stalled wasm xApp cannot back up a shard's fan-in.
//
// Everything here is gated on Config.Overload: a nil OverloadConfig keeps
// the pre-overload RIC byte-for-byte — synchronous dispatch from the
// receive loop, TypeError budget refusals, no queues, no brownout.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/metrics"
	"waran/internal/obs/flight"
	"waran/internal/obs/trace"
)

// Overload-control defaults (OverloadConfig.withDefaults).
const (
	// DefaultAdmitRate is the per-shard association admission rate
	// (tokens/second) when OverloadConfig.AdmitRate is zero.
	DefaultAdmitRate = 256.0
	// DefaultAdmitBurst is the admission token bucket capacity.
	DefaultAdmitBurst = 32
	// DefaultQueueDepth bounds each association's indication queue.
	DefaultQueueDepth = 256
	// DefaultStaleAfter is how old a queued KPM indication may grow before
	// a browned-out RIC sheds it instead of dispatching it.
	DefaultStaleAfter = 250 * time.Millisecond
	// DefaultXAppDeadline is the per-xApp dispatch wall-clock bound applied
	// to xApps installed without an explicit Policy.CallTimeout.
	DefaultXAppDeadline = 10 * time.Millisecond
	// DefaultWidenFactor multiplies the report period while browned out.
	DefaultWidenFactor = 2
	// DefaultBrownoutPoll is the brownout re-evaluation cadence.
	DefaultBrownoutPoll = 20 * time.Millisecond
	// DefaultRetryAfter is the retry-after hint on TypeBusy admission
	// refusals.
	DefaultRetryAfter = 500 * time.Millisecond
	// DefaultBusyPause is the KPM pause hinted to busy-capable agents while
	// the RIC is critically browned out.
	DefaultBusyPause = time.Second
	// DefaultLoopP99Budget is the dispatch-latency p99 above which the
	// brownout controller escalates (2x above it escalates to critical).
	DefaultLoopP99Budget = 250 * time.Millisecond
	// DefaultEnterDegraded / DefaultEnterCritical are the queue fill
	// fractions entering brownout levels 1 and 2.
	DefaultEnterDegraded = 0.5
	DefaultEnterCritical = 0.9
)

// BrownoutLevel is the RIC's overload posture.
type BrownoutLevel int32

// Brownout levels: each escalation sheds more measurement load while
// keeping control and heartbeat traffic untouched.
const (
	// BrownoutNormal: full service.
	BrownoutNormal BrownoutLevel = iota
	// BrownoutDegraded: report periods widen by WidenFactor and queued KPM
	// older than StaleAfter is shed at dispatch.
	BrownoutDegraded
	// BrownoutCritical: additionally, new subscriptions are refused with
	// TypeBusy and busy-capable agents are asked to pause reporting.
	BrownoutCritical
)

// String returns the level label.
func (l BrownoutLevel) String() string {
	switch l {
	case BrownoutNormal:
		return "normal"
	case BrownoutDegraded:
		return "degraded"
	case BrownoutCritical:
		return "critical"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// OverloadConfig tunes the RIC's overload-control layer. Setting
// Config.Overload to a non-nil OverloadConfig (the zero value works)
// enables admission control, bounded queued dispatch, the brownout state
// machine, and per-xApp isolation.
type OverloadConfig struct {
	// AdmitRate is the per-shard association admission rate in
	// associations/second (default DefaultAdmitRate; negative disables the
	// gate). After a RIC restart this is what turns a reconnect stampede
	// into a controlled ramp.
	AdmitRate float64
	// AdmitBurst is the token bucket capacity (default DefaultAdmitBurst).
	AdmitBurst int
	// QueueDepth bounds each association's indication queue (default
	// DefaultQueueDepth). A full queue sheds its oldest KPM indication —
	// control and heartbeat frames are never queued, so never shed.
	QueueDepth int
	// StaleAfter is the queued-KPM age shed while browned out (default
	// DefaultStaleAfter; negative disables stale shedding).
	StaleAfter time.Duration
	// XAppDeadline is the wall-clock dispatch bound installed as
	// Policy.CallTimeout on xApps that did not set one (default
	// DefaultXAppDeadline; negative leaves policies untouched).
	XAppDeadline time.Duration
	// Breaker tunes the per-xApp circuit breaker (zero value = guard
	// defaults).
	Breaker guard.BreakerConfig
	// EnterDegraded / EnterCritical are the queue fill fractions entering
	// brownout levels 1 and 2 (defaults DefaultEnterDegraded /
	// DefaultEnterCritical).
	EnterDegraded float64
	EnterCritical float64
	// LoopP99Budget escalates brownout when the dispatch-latency p99
	// exceeds it (2x enters critical). Default DefaultLoopP99Budget;
	// negative disables the latency trigger.
	LoopP99Budget time.Duration
	// WidenFactor multiplies the subscription report period while browned
	// out (default DefaultWidenFactor).
	WidenFactor int
	// Poll is the brownout re-evaluation cadence (default
	// DefaultBrownoutPoll).
	Poll time.Duration
	// RetryAfter is the hint carried on TypeBusy admission refusals
	// (default DefaultRetryAfter).
	RetryAfter time.Duration
	// BusyPause is the reporting pause hinted to busy-capable agents at
	// critical brownout (default DefaultBusyPause; negative disables
	// mid-association backpressure).
	BusyPause time.Duration
}

// Validate rejects overload configurations withDefaults would have to guess
// about.
func (c OverloadConfig) Validate() error {
	if c.AdmitBurst < 0 {
		return fmt.Errorf("ric: negative admission burst %d", c.AdmitBurst)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("ric: negative queue depth %d", c.QueueDepth)
	}
	if c.WidenFactor < 0 {
		return fmt.Errorf("ric: negative widen factor %d", c.WidenFactor)
	}
	if c.EnterDegraded < 0 || c.EnterDegraded > 1 {
		return fmt.Errorf("ric: degraded fill fraction %v outside [0, 1]", c.EnterDegraded)
	}
	if c.EnterCritical < 0 || c.EnterCritical > 1 {
		return fmt.Errorf("ric: critical fill fraction %v outside [0, 1]", c.EnterCritical)
	}
	return nil
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.AdmitRate == 0 {
		c.AdmitRate = DefaultAdmitRate
	}
	if c.AdmitBurst == 0 {
		c.AdmitBurst = DefaultAdmitBurst
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = DefaultStaleAfter
	}
	if c.XAppDeadline == 0 {
		c.XAppDeadline = DefaultXAppDeadline
	}
	if c.EnterDegraded == 0 {
		c.EnterDegraded = DefaultEnterDegraded
	}
	if c.EnterCritical == 0 {
		c.EnterCritical = DefaultEnterCritical
	}
	if c.EnterCritical < c.EnterDegraded {
		c.EnterCritical = c.EnterDegraded
	}
	if c.LoopP99Budget == 0 {
		c.LoopP99Budget = DefaultLoopP99Budget
	}
	if c.WidenFactor < 2 {
		c.WidenFactor = DefaultWidenFactor
	}
	if c.Poll <= 0 {
		c.Poll = DefaultBrownoutPoll
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.BusyPause == 0 {
		c.BusyPause = DefaultBusyPause
	}
	return c
}

// overload is the RIC's runtime overload state (nil when Config.Overload
// is nil). The shed ledger counters conserve exactly:
//
//	offered == delivered + shed_overflow + shed_stale + shed_teardown + refused_late
//
// once every association has torn down — every indication entering a queue
// leaves it through exactly one of those counters.
type overload struct {
	cfg    OverloadConfig
	tracer *trace.Tracer
	flight *flight.Recorder // nil-is-off incident journal (Config.Flight)

	gateMu sync.Mutex
	tokens []float64 // per-shard admission tokens
	last   []time.Time

	offered       metrics.Counter
	delivered     metrics.Counter
	shedOverflow  metrics.Counter
	shedStale     metrics.Counter
	shedTeardown  metrics.Counter
	refusedLate   metrics.Counter
	busyAdmission metrics.Counter // associations refused with TypeBusy at admission
	refusedSubs   metrics.Counter // subscriptions refused at critical brownout
	busyFrames    metrics.Counter // mid-association TypeBusy backpressure frames sent
	spills        metrics.Counter // associations placed on a non-hashed shard
	transitions   metrics.Counter // brownout level changes

	level      atomic.Int32
	maxFill    atomic.Int64 // metric-exempt: eval-window queue high-water, reset each poll
	lastEval   atomic.Int64 // metric-exempt: unix-nano CAS guard for maybeEval, not telemetry
	downStreak atomic.Int32 // metric-exempt: consecutive below-threshold evals; CAS winners alternate, so it needs visibility, not contention safety

	p99Mu   sync.Mutex
	dispP99 *metrics.P2 // dispatch latency (ns)
}

func newOverload(cfg OverloadConfig, shards int, tracer *trace.Tracer, rec *flight.Recorder) *overload {
	o := &overload{
		cfg:     cfg,
		tracer:  tracer,
		flight:  rec,
		tokens:  make([]float64, shards),
		last:    make([]time.Time, shards),
		dispP99: metrics.NewP2(0.99),
	}
	for i := range o.tokens {
		o.tokens[i] = float64(cfg.AdmitBurst)
	}
	return o
}

// Level returns the current brownout level.
func (o *overload) Level() BrownoutLevel {
	return BrownoutLevel(o.level.Load())
}

// admitAssoc spends one admission token for shardID, or reports how long
// until one is available.
func (o *overload) admitAssoc(shardID int, now time.Time) (bool, time.Duration) {
	if o.cfg.AdmitRate < 0 {
		return true, 0
	}
	o.gateMu.Lock()
	defer o.gateMu.Unlock()
	if !o.last[shardID].IsZero() {
		o.tokens[shardID] += now.Sub(o.last[shardID]).Seconds() * o.cfg.AdmitRate
		if o.tokens[shardID] > float64(o.cfg.AdmitBurst) {
			o.tokens[shardID] = float64(o.cfg.AdmitBurst)
		}
	}
	o.last[shardID] = now
	if o.tokens[shardID] >= 1 {
		o.tokens[shardID]--
		return true, 0
	}
	wait := time.Duration((1 - o.tokens[shardID]) / o.cfg.AdmitRate * float64(time.Second))
	if wait < o.cfg.RetryAfter {
		wait = o.cfg.RetryAfter
	}
	return false, wait
}

// observeDispatch feeds one dispatch latency into the brownout controller.
func (o *overload) observeDispatch(d time.Duration) {
	o.p99Mu.Lock()
	o.dispP99.Add(float64(d))
	o.p99Mu.Unlock()
}

// dispatchP99 returns the current dispatch-latency p99 estimate.
func (o *overload) dispatchP99() time.Duration {
	o.p99Mu.Lock()
	defer o.p99Mu.Unlock()
	return time.Duration(o.dispP99.Value())
}

// noteQueueLen raises the eval-window queue high-water mark.
func (o *overload) noteQueueLen(n int) {
	for {
		cur := o.maxFill.Load()
		if int64(n) <= cur || o.maxFill.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// maybeEval re-evaluates the brownout level at most once per poll interval.
// It is called from the hot enqueue/dispatch paths, so the off-interval
// fast path is one atomic load.
func (o *overload) maybeEval(now time.Time) {
	last := o.lastEval.Load()
	if now.UnixNano()-last < int64(o.cfg.Poll) {
		return
	}
	if !o.lastEval.CompareAndSwap(last, now.UnixNano()) {
		return // another goroutine won this interval
	}
	fill := float64(o.maxFill.Swap(0)) / float64(o.cfg.QueueDepth)
	p99 := o.dispatchP99()
	target := BrownoutNormal
	if fill >= o.cfg.EnterDegraded {
		target = BrownoutDegraded
	}
	if fill >= o.cfg.EnterCritical {
		target = BrownoutCritical
	}
	if o.cfg.LoopP99Budget > 0 {
		if p99 > o.cfg.LoopP99Budget && target < BrownoutDegraded {
			target = BrownoutDegraded
		}
		if p99 > 2*o.cfg.LoopP99Budget {
			target = BrownoutCritical
		}
	}
	cur := o.Level()
	if target == cur {
		o.downStreak.Store(0)
		return
	}
	if target < cur {
		// De-escalate only after two consecutive calm evals, so the level
		// does not flap at the threshold.
		if o.downStreak.Add(1) < 2 {
			return
		}
		target = cur - 1 // step down one level at a time
	}
	o.downStreak.Store(0)
	o.level.Store(int32(target))
	o.transitions.Inc()
	if rec := o.flight; rec.Enabled() {
		rec.Record(flight.Event{
			Class: flight.EvBrownoutShift, Plane: flight.PlaneRIC,
			Detail: cur.String() + "->" + target.String(),
			Value:  float64(target),
		})
	}
	if o.tracer.Enabled() {
		c := trace.NewContext()
		o.tracer.Record(&trace.Span{
			TraceID: c.TraceID, SpanID: c.SpanID,
			Name: trace.SpanBrownoutShift, Plane: trace.PlaneRIC,
			Err:     fmt.Sprintf("%s->%s", cur, target),
			StartNs: now.UnixNano(),
		})
	}
}

// queuedInd is one KPM indication parked in an association queue.
type queuedInd struct {
	ind *e2.Indication
	ctx trace.Context
	enq time.Time
}

// assocQueue is one association's bounded indication queue: the receive
// loop is the only producer, the association's dispatcher goroutine the
// only consumer (eviction aside).
type assocQueue struct {
	ch   chan queuedInd
	quit chan struct{}
	done chan struct{}
}

func newAssocQueue(depth int) *assocQueue {
	return &assocQueue{
		ch:   make(chan queuedInd, depth),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// enqueueIndication offers one indication to the association's queue,
// evicting the oldest queued indication when full (drop-oldest: stale KPM
// is worth less than fresh KPM). Single producer per queue.
func (r *RIC) enqueueIndication(q *assocQueue, it queuedInd) {
	o := r.ov
	o.offered.Inc()
	select {
	case <-q.quit:
		// The dispatcher already stopped (teardown raced the last frames in
		// flight): refuse rather than park the indication forever.
		o.refusedLate.Inc()
		r.recordShed(it, "refused-late")
		return
	default:
	}
	for {
		select {
		case q.ch <- it:
			o.noteQueueLen(len(q.ch))
			o.maybeEval(time.Now())
			return
		default:
			select {
			case old := <-q.ch:
				o.shedOverflow.Inc()
				r.recordShed(old, "overflow")
			default:
				// The dispatcher drained concurrently; retry the send.
			}
		}
	}
}

// recordShed spans one shed/refusal decision on the tracer, parented to the
// indication's own trace when it has one, and journals it into the flight
// recorder so a diagnostic bundle carries the shed ledger's causal detail.
func (r *RIC) recordShed(it queuedInd, reason string) {
	if rec := r.ov.flight; rec.Enabled() {
		rec.Record(flight.Event{
			Class: flight.EvShed, Plane: flight.PlaneRIC,
			Cell: it.ind.Cell, Slot: it.ind.Slot, Detail: reason,
		})
	}
	if !r.cfg.Tracer.Enabled() {
		return
	}
	sp := &trace.Span{
		Name: trace.SpanShed, Plane: trace.PlaneRIC,
		Slot: it.ind.Slot, Cell: it.ind.Cell, Err: reason,
		StartNs: it.enq.UnixNano(), DurNs: int64(time.Since(it.enq)),
	}
	if it.ctx.Valid() {
		sp.TraceID, sp.Parent, sp.SpanID = it.ctx.TraceID, it.ctx.SpanID, trace.NewSpanID()
	} else {
		c := trace.NewContext()
		sp.TraceID, sp.SpanID = c.TraceID, c.SpanID
	}
	r.cfg.Tracer.Record(sp)
}

// dispatchLoop is one association's dispatcher: it drains the queue through
// the exact synchronous delivery path, sheds stale KPM while browned out,
// applies brownout transitions to the association (re-subscribing at a
// widened period, pausing busy-capable agents), and on teardown drains the
// residue into the shed ledger.
func (r *RIC) dispatchLoop(sh *shard, conn *e2.Conn, q *assocQueue, busyCapable *atomic.Bool) {
	defer close(q.done)
	o := r.ov
	reqID := uint32(100)
	applied := BrownoutNormal
	var lastBusy time.Time
	for {
		select {
		case <-q.quit:
			for {
				select {
				case it := <-q.ch:
					o.shedTeardown.Inc()
					r.recordShed(it, "teardown")
				default:
					return
				}
			}
		case it := <-q.ch:
			lvl := o.Level()
			if lvl != applied {
				reqID++
				r.applyBrownout(conn, reqID, lvl, busyCapable, &lastBusy)
				applied = lvl
			} else if lvl == BrownoutCritical && o.cfg.BusyPause > 0 && busyCapable.Load() &&
				time.Since(lastBusy) > o.cfg.BusyPause*3/4 {
				// Refresh the pause before the agent's previous hint expires.
				o.busyFrames.Inc()
				lastBusy = time.Now()
				_ = conn.Send(e2.NewBusyMessage(o.cfg.BusyPause, "ric: brownout critical"))
			}
			if lvl >= BrownoutDegraded && o.cfg.StaleAfter > 0 && time.Since(it.enq) > o.cfg.StaleAfter {
				o.shedStale.Inc()
				r.recordShed(it, "stale")
				o.maybeEval(time.Now())
				continue
			}
			start := time.Now()
			// A send failure inside deliver means the conn is dying; the
			// receive loop observes it too and tears the association down.
			// The indication still reached the xApps, so it counts as
			// delivered either way.
			_ = r.deliver(sh, conn, it.ind, it.ctx, &reqID)
			o.delivered.Inc()
			o.observeDispatch(time.Since(start))
			o.maybeEval(time.Now())
		}
	}
}

// applyBrownout pushes a brownout level change onto one association: the
// report period widens (or restores) through a mid-association
// re-subscription, and at critical level busy-capable agents are asked to
// pause reporting.
func (r *RIC) applyBrownout(conn *e2.Conn, reqID uint32, lvl BrownoutLevel, busyCapable *atomic.Bool, lastBusy *time.Time) {
	o := r.ov
	period := r.cfg.ReportPeriodMs
	if lvl >= BrownoutDegraded {
		period *= uint32(o.cfg.WidenFactor)
	}
	sub := r.subscriptionMsg(period)
	sub.RequestID = reqID
	_ = conn.Send(sub)
	if lvl == BrownoutCritical && o.cfg.BusyPause > 0 && busyCapable.Load() {
		o.busyFrames.Inc()
		*lastBusy = time.Now()
		_ = conn.Send(e2.NewBusyMessage(o.cfg.BusyPause, "ric: brownout critical"))
	}
}

// acquireShard takes one association slot on preferred, spilling onto any
// other shard with spare budget when preferred is full — per-shard budgets
// bound goroutines per domain, but an unlucky hash must not refuse an
// association the RIC as a whole has room for.
func (r *RIC) acquireShard(preferred *shard) (*shard, bool) {
	select {
	case preferred.sem <- struct{}{}:
		return preferred, true
	default:
	}
	if r.ov == nil {
		return nil, false
	}
	for i := 1; i < len(r.shards); i++ {
		sh := r.shards[(preferred.id+i)%len(r.shards)]
		select {
		case sh.sem <- struct{}{}:
			r.ov.spills.Inc()
			return sh, true
		default:
		}
	}
	return nil, false
}

// OverloadStats is the flat snapshot of the overload-control layer,
// including the shed ledger (Offered == Delivered + ShedOverflow +
// ShedStale + ShedTeardown + RefusedLate at quiescence).
type OverloadStats struct {
	BrownoutLevel        string  `json:"brownout_level"`
	Offered              uint64  `json:"offered"`
	Delivered            uint64  `json:"delivered"`
	ShedOverflow         uint64  `json:"shed_overflow"`
	ShedStale            uint64  `json:"shed_stale"`
	ShedTeardown         uint64  `json:"shed_teardown"`
	RefusedLate          uint64  `json:"refused_late"`
	BusyAdmission        uint64  `json:"busy_admission_refusals"`
	RefusedSubscriptions uint64  `json:"refused_subscriptions"`
	BusyBackpressure     uint64  `json:"busy_backpressure_frames"`
	Spills               uint64  `json:"shard_spills"`
	BrownoutTransitions  uint64  `json:"brownout_transitions"`
	DispatchP99Ms        float64 `json:"dispatch_p99_ms"`
}

// OverloadStats snapshots the overload layer; ok is false when overload
// control is disabled.
func (r *RIC) OverloadStats() (OverloadStats, bool) {
	o := r.ov
	if o == nil {
		return OverloadStats{}, false
	}
	return OverloadStats{
		BrownoutLevel:        o.Level().String(),
		Offered:              o.offered.Value(),
		Delivered:            o.delivered.Value(),
		ShedOverflow:         o.shedOverflow.Value(),
		ShedStale:            o.shedStale.Value(),
		ShedTeardown:         o.shedTeardown.Value(),
		RefusedLate:          o.refusedLate.Value(),
		BusyAdmission:        o.busyAdmission.Value(),
		RefusedSubscriptions: o.refusedSubs.Value(),
		BusyBackpressure:     o.busyFrames.Value(),
		Spills:               o.spills.Value(),
		BrownoutTransitions:  o.transitions.Value(),
		DispatchP99Ms:        float64(o.dispatchP99().Nanoseconds()) / 1e6,
	}, true
}

// BrownoutLevel returns the current brownout level (BrownoutNormal when
// overload control is disabled).
func (r *RIC) BrownoutLevel() BrownoutLevel {
	if r.ov == nil {
		return BrownoutNormal
	}
	return r.ov.Level()
}

package ric

import (
	"testing"
	"time"

	"waran/internal/obs"
)

// TestFlightRecExperiment runs a shortened storm and checks the experiment's
// own hard assertions plus the shape of the digest it reports: the bundles
// must collectively carry the causal chain, at least one of them must have
// been captured by an anomaly trigger, and the ledger must conserve.
func TestFlightRecExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunFlightRec(FlightRecConfig{
		Agents:        8,
		Dwell:         700 * time.Millisecond,
		OverheadSlots: 200,
		Dir:           t.TempDir(),
		Obs:           reg,
	})
	if err != nil {
		t.Fatalf("RunFlightRec: %v", err)
	}
	if !res.CausalChain {
		t.Fatalf("causal chain not covered: %v", res.Flight.Coverage)
	}
	if res.TriggeredBundles == 0 {
		t.Fatalf("no anomaly-triggered bundle (bundles: %+v)", res.Flight.Bundles)
	}
	if !res.LedgerConserved {
		t.Fatalf("ledger not conserved: %+v", res.Ledger)
	}
	if len(res.Flight.Bundles) == 0 {
		t.Fatal("no bundles in the digest")
	}
	for _, cls := range flightrecChain {
		if res.Flight.Coverage[cls.String()] == 0 {
			t.Fatalf("class %v missing from bundle coverage: %v", cls, res.Flight.Coverage)
		}
	}
	// The journal's instruments are registered on the experiment registry.
	snap := reg.Snapshot()
	if _, ok := snap["waran_flight_events"]; !ok {
		t.Fatalf("flight instruments not in registry snapshot (keys: %d)", len(snap))
	}
}

// Package ric implements WA-RAN's near-Real-Time RAN Intelligent
// Controller (§4B of the paper): xApps hosted as Wasm plugins, RIC host
// functions exposed to them (inter-xApp messaging), communication plugins
// that wrap the E2-lite wire protocol on both sides, and the gNB-side E2
// agent.
package ric

import (
	"fmt"
	"sync"

	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// XAppEntry is the export every xApp plugin must provide: it receives an
// encoded e2 indication as call input and returns an encoded control list.
const XAppEntry = "on_indication"

// DefaultXAppQuarantine is the consecutive-fault limit before an xApp is
// disabled.
const DefaultXAppQuarantine = 3

// XApp is one sandboxed control application.
type XApp struct {
	Name   string
	plugin *wabi.Plugin

	// breaker, when non-nil (overload control enabled), is the xApp's
	// guard-style circuit: a stalling or faulting xApp trips it open and is
	// skipped (at zero dispatch cost) until its probes succeed again, so
	// one bad xApp cannot back up a shard's fan-in.
	breaker *guard.Breaker

	// callMu serializes sandbox invocations: one RIC may serve several E2
	// associations concurrently, but a plugin instance is single-threaded.
	callMu            sync.Mutex
	mu                sync.Mutex
	mailbox           [][]byte
	consecutiveFaults int
	totalFaults       uint64
	disabled          bool
	invocations       uint64
	skipped           uint64
}

// Disabled reports whether the xApp has been quarantined after faults.
func (x *XApp) Disabled() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.disabled
}

// XAppStats is the flat snapshot of an xApp's invocation accounting.
type XAppStats struct {
	Invocations uint64 `json:"invocations"`
	Faults      uint64 `json:"faults"`
	// Skipped counts dispatches bypassed while the xApp's breaker was open.
	Skipped  uint64 `json:"skipped"`
	Disabled bool   `json:"disabled"`
	// BreakerState is the guard breaker state label ("" without a breaker).
	BreakerState string `json:"breaker_state,omitempty"`
}

// Stats returns invocation and fault counters.
func (x *XApp) Stats() XAppStats {
	x.mu.Lock()
	s := XAppStats{Invocations: x.invocations, Faults: x.totalFaults, Skipped: x.skipped, Disabled: x.disabled}
	x.mu.Unlock()
	if x.breaker != nil {
		s.BreakerState = x.breaker.State().String()
	}
	return s
}

// Breaker exposes the xApp's circuit breaker (nil when overload control is
// disabled).
func (x *XApp) Breaker() *guard.Breaker { return x.breaker }

// Plugin exposes the underlying sandbox.
func (x *XApp) Plugin() *wabi.Plugin { return x.plugin }

// deliver appends a message to the xApp's mailbox (inter-xApp messaging).
func (x *XApp) deliver(msg []byte) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.mailbox) < 1024 { // drop on overload rather than grow unbounded
		x.mailbox = append(x.mailbox, msg)
	}
}

// popMail removes and returns the oldest mailbox entry, or nil.
func (x *XApp) popMail() []byte {
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.mailbox) == 0 {
		return nil
	}
	m := x.mailbox[0]
	x.mailbox = x.mailbox[1:]
	return m
}

// hostFuncs builds the "ric" import namespace for an xApp: the well-defined
// host functions the paper says the RIC provides (messaging between xApps
// and diagnostics).
func (r *RIC) hostFuncs(self *XApp) map[string]*wasm.HostFunc {
	i32 := wasm.ValI32
	return map[string]*wasm.HostFunc{
		// xapp_send(name_ptr, name_len, msg_ptr, msg_len) -> i32 (1 ok, 0 unknown dst)
		"xapp_send": {
			Name: "xapp_send",
			Type: wasm.FuncType{Params: []wasm.ValType{i32, i32, i32, i32}, Results: []wasm.ValType{i32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				name, err := ctx.Memory().Read(uint32(args[0]), uint32(args[1]))
				if err != nil {
					return nil, err
				}
				msg, err := ctx.Memory().Read(uint32(args[2]), uint32(args[3]))
				if err != nil {
					return nil, err
				}
				dst, ok := r.XApp(string(name))
				if !ok {
					return []uint64{0}, nil
				}
				dst.deliver(msg)
				return []uint64{1}, nil
			},
		},
		// xapp_recv(dst_ptr, cap) -> i32 bytes copied (0 = empty mailbox)
		"xapp_recv": {
			Name: "xapp_recv",
			Type: wasm.FuncType{Params: []wasm.ValType{i32, i32}, Results: []wasm.ValType{i32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				m := self.popMail()
				if m == nil {
					return []uint64{0}, nil
				}
				if uint32(len(m)) > uint32(args[1]) {
					m = m[:uint32(args[1])]
				}
				if err := ctx.Memory().Write(uint32(args[0]), m); err != nil {
					return nil, err
				}
				return []uint64{uint64(uint32(len(m)))}, nil
			},
		},
	}
}

// invoke runs the xApp on an encoded indication, returning its requested
// control actions. Faults are contained and counted; a quarantined xApp
// returns no actions.
func (x *XApp) invoke(r *RIC, indication []byte) ([]e2.ControlRequest, error) {
	x.mu.Lock()
	if x.disabled {
		x.mu.Unlock()
		return nil, nil
	}
	// An open breaker skips the dispatch outright: the stalled xApp costs
	// the fan-in nothing until a half-open probe proves it healthy again.
	if x.breaker != nil && !x.breaker.Allow() {
		x.skipped++
		x.mu.Unlock()
		return nil, nil
	}
	x.invocations++
	x.mu.Unlock()

	x.callMu.Lock()
	out, err := x.plugin.Call(XAppEntry, indication)
	x.callMu.Unlock()
	if err == nil {
		var list []e2.ControlRequest
		list, err = e2.DecodeControlList(out)
		if err == nil {
			if x.breaker != nil {
				x.breaker.Record(wabi.FailNone)
			}
			x.mu.Lock()
			x.consecutiveFaults = 0
			x.mu.Unlock()
			return list, nil
		}
	}
	if x.breaker != nil {
		x.breaker.Record(wabi.ClassOf(err))
	}
	x.mu.Lock()
	x.totalFaults++
	x.consecutiveFaults++
	if x.consecutiveFaults >= DefaultXAppQuarantine {
		x.disabled = true
	}
	x.mu.Unlock()
	if r.cfg.OnFault != nil {
		r.cfg.OnFault(x.Name, err)
	}
	return nil, fmt.Errorf("ric: xApp %q: %w", x.Name, err)
}

package ric

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/e2"
	"waran/internal/obs/trace"
)

// RANControl is the control surface an E2 node exposes to its agent — the
// "host functions" the gNB makes available to the RIC in the paper's
// design. core.GNB implements it.
type RANControl interface {
	// Snapshot reports current KPM state.
	Snapshot(cell uint32) *e2.Indication
	// Apply executes one control action.
	Apply(c *e2.ControlRequest) error
}

// TracedRANControl is optionally implemented by RANControl targets (core.GNB
// does) to receive the causal trace context of a control action, so the
// apply, any supervised canary swap, and the first affected slot join the
// decision's span tree. Agents fall back to Apply when the target doesn't
// implement it or the control is untraced.
type TracedRANControl interface {
	ApplyTraced(c *e2.ControlRequest, ctx trace.Context) error
}

// Agent is the gNB-side endpoint of the E2-lite association: it answers the
// RIC's subscription (including mid-association re-subscriptions), streams
// indications at the subscribed cadence (driven by Tick from the MAC slot
// loop), applies incoming control actions, and echoes heartbeats so the
// RIC can track liveness.
type Agent struct {
	conn *e2.Conn
	ran  RANControl
	Cell uint32

	// LivenessTimeout, when > 0, bounds the silence tolerated from the
	// RIC: if no frame (heartbeats included) arrives for this long, the
	// agent declares the association dead, closes the conn, and the
	// Start-returned channel yields e2.ErrAssociationDead. Set it to a
	// few multiples of the RIC's heartbeat interval. Zero disables
	// liveness tracking (the pre-resilience behaviour).
	LivenessTimeout time.Duration

	// Tracer, when non-nil, lets the agent negotiate trace propagation
	// with the RIC and record indication.encode/transport spans on the gNB
	// plane. Set before Start.
	Tracer *trace.Tracer

	subscribed  atomic.Bool
	periodSlots atomic.Uint64 // metric-exempt: subscription cadence, not telemetry
	dead        atomic.Bool
	peerTraced  atomic.Bool // RIC advertised e2.TraceCapabilityBit and we accepted

	mu           sync.Mutex
	sliceFilter  []uint32
	indications  uint64
	controlsOK   uint64
	controlsFail uint64
	resubscribes uint64
}

// NewAgent creates an agent for one association.
func NewAgent(conn *e2.Conn, ran RANControl, cell uint32) *Agent {
	return &Agent{conn: conn, ran: ran, Cell: cell}
}

// Start blocks until the RIC's subscription request arrives, acknowledges
// it, and spawns the control-receive loop (plus the liveness watchdog when
// LivenessTimeout is set). The returned channel yields the terminal error
// of the receive loop (nil on clean shutdown, e2.ErrAssociationDead when
// liveness failed).
func (a *Agent) Start() (<-chan error, error) {
	if a.LivenessTimeout > 0 {
		// A RIC that never subscribes is as dead as one that stops
		// heartbeating: bound the subscription wait too.
		_ = a.conn.SetReadDeadline(time.Now().Add(2 * a.LivenessTimeout))
	}
	m, err := a.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("ric: agent: waiting for subscription: %w", err)
	}
	if a.LivenessTimeout > 0 {
		_ = a.conn.SetReadDeadline(time.Time{})
	}
	if m.Type != e2.TypeSubscriptionRequest {
		refusal := &e2.Message{Type: e2.TypeError, Error: &e2.ErrorBody{Reason: "expected subscription-request"}}
		_ = a.conn.Send(refusal)
		return nil, fmt.Errorf("ric: agent: unexpected first message %s", m.Type)
	}
	if err := a.applySubscription(m); err != nil {
		return nil, err
	}

	done := make(chan error, 1)
	recvDone := make(chan struct{})
	go func() {
		err := a.recvLoop()
		close(recvDone)
		done <- err
	}()
	if a.LivenessTimeout > 0 {
		go a.watchdog(recvDone)
	}
	return done, nil
}

// applySubscription installs (or replaces) the subscription state and acks
// it — shared by the initial handshake and mid-association re-subscribes.
func (a *Agent) applySubscription(m *e2.Message) error {
	period := uint64(m.Subscription.ReportPeriodMs)
	if period == 0 {
		period = 100
	}
	a.periodSlots.Store(period) // 1 ms slots: ms == slots
	a.mu.Lock()
	a.sliceFilter = append([]uint32(nil), m.Subscription.SliceIDs...)
	a.mu.Unlock()
	ack := &e2.Message{
		Type:             e2.TypeSubscriptionResponse,
		RequestID:        m.RequestID,
		RANFunction:      m.RANFunction,
		SubscriptionResp: &e2.SubscriptionResponse{Accepted: true},
	}
	// Trace capability negotiation: a trace-capable RIC sets the reserved
	// bit in RANFunction (old agents echo it untouched); a trace-capable
	// agent answers with the token in Reason (old RICs only read Reason on
	// rejection). Indications get trace trailers only after both halves
	// advertised, so untraced peers never see unexpected bytes.
	if m.RANFunction&e2.TraceCapabilityBit != 0 && a.Tracer.Enabled() {
		ack.SubscriptionResp.Reason = e2.TraceCapabilityToken
		a.peerTraced.Store(true)
	} else {
		a.peerTraced.Store(false)
	}
	if err := a.conn.Send(ack); err != nil {
		return err
	}
	a.subscribed.Store(true)
	return nil
}

// watchdog declares the association dead when nothing has arrived for
// LivenessTimeout, closing the conn so the blocked recvLoop returns
// promptly instead of hanging on a half-open TCP stream.
func (a *Agent) watchdog(recvDone <-chan struct{}) {
	interval := a.LivenessTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-recvDone:
			return
		case <-ticker.C:
			if time.Since(a.conn.LastRecv()) > a.LivenessTimeout {
				a.dead.Store(true)
				a.conn.Close()
				return
			}
		}
	}
}

func (a *Agent) recvLoop() error {
	for {
		m, err := a.conn.Recv()
		if err != nil {
			if a.dead.Load() {
				return e2.ErrAssociationDead
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		switch m.Type {
		case e2.TypeControlRequest:
			applyErr := a.applyControl(m)
			ack := &e2.Message{
				Type:        e2.TypeControlAck,
				RequestID:   m.RequestID,
				RANFunction: m.RANFunction,
				ControlAck:  &e2.ControlAck{Accepted: applyErr == nil},
			}
			a.mu.Lock()
			if applyErr == nil {
				a.controlsOK++
			} else {
				a.controlsFail++
				ack.ControlAck.Reason = applyErr.Error()
			}
			a.mu.Unlock()
			if err := a.conn.Send(ack); err != nil {
				return err
			}
		case e2.TypeHeartbeat:
			// Echo heartbeats so both sides can detect liveness.
			if err := a.conn.Send(&e2.Message{Type: e2.TypeHeartbeat}); err != nil {
				return err
			}
		case e2.TypeSubscriptionRequest:
			// Mid-association re-subscription: the RIC adjusts cadence or
			// slice filter (or re-asserts after its own restart). Apply
			// the new parameters and re-ack instead of dropping it.
			a.mu.Lock()
			a.resubscribes++
			a.mu.Unlock()
			if err := a.applySubscription(m); err != nil {
				return err
			}
		default:
			// Unknown or out-of-place message: report it to the peer
			// instead of silently dropping the frame.
			reply := &e2.Message{
				Type:      e2.TypeError,
				RequestID: m.RequestID,
				Error:     &e2.ErrorBody{Reason: fmt.Sprintf("agent: unexpected %s", m.Type)},
			}
			if err := a.conn.Send(reply); err != nil {
				return err
			}
		}
	}
}

// applyControl routes a control request into the RAN, through the traced
// path when the request carries a live trace context and the target
// understands it.
func (a *Agent) applyControl(m *e2.Message) error {
	if m.Trace.Valid() {
		if tc, ok := a.ran.(TracedRANControl); ok {
			return tc.ApplyTraced(m.Control, m.Trace)
		}
	}
	return a.ran.Apply(m.Control)
}

// Tick is called by the owner after each MAC slot; at the subscribed
// cadence it snapshots KPM state and sends an indication.
func (a *Agent) Tick(slot uint64) error {
	if !a.subscribed.Load() {
		return nil
	}
	period := a.periodSlots.Load()
	if period == 0 || slot%period != 0 {
		return nil
	}
	tracing := a.Tracer.Enabled() && a.peerTraced.Load()
	var buildStart time.Time
	if tracing {
		buildStart = time.Now()
	}
	ind := a.ran.Snapshot(a.Cell)
	a.mu.Lock()
	filter := a.sliceFilter
	a.indications++
	a.mu.Unlock()
	if len(filter) > 0 {
		ind = filterIndication(ind, filter)
	}
	msg := &e2.Message{
		Type:        e2.TypeIndication,
		RANFunction: e2.RANFunctionKPM,
		Indication:  ind,
	}
	if !tracing {
		return a.conn.Send(msg)
	}

	// Root the decision's trace here: the indication that will provoke it.
	// The wire carries the transport span's ID so the RIC's decode span
	// parents to it.
	ctx := trace.NewContext()
	transportID := trace.NewSpanID()
	msg.Trace = trace.Context{TraceID: ctx.TraceID, SpanID: transportID}
	sendStart := time.Now()
	err := a.conn.Send(msg)
	sendDur := time.Since(sendStart)
	encDur := a.conn.LastEncodeDur()
	a.Tracer.Record(&trace.Span{
		TraceID: ctx.TraceID, SpanID: ctx.SpanID,
		Name: trace.SpanIndicationEncode, Plane: trace.PlaneGNB,
		Slot: slot, Cell: a.Cell,
		StartNs: buildStart.UnixNano(),
		DurNs:   int64(sendStart.Sub(buildStart) + encDur),
	})
	sp := &trace.Span{
		TraceID: ctx.TraceID, SpanID: transportID, Parent: ctx.SpanID,
		Name: trace.SpanTransport, Plane: trace.PlaneGNB,
		Slot: slot, Cell: a.Cell,
		StartNs: sendStart.Add(encDur).UnixNano(),
		DurNs:   int64(sendDur - encDur),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	a.Tracer.Record(sp)
	return err
}

// Period returns the subscribed indication cadence in slots (0 before the
// first subscription).
func (a *Agent) Period() uint64 { return a.periodSlots.Load() }

// Counters reports indication and control outcomes.
func (a *Agent) Counters() (indications, controlsOK, controlsFail uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.indications, a.controlsOK, a.controlsFail
}

// Resubscribes reports how many mid-association re-subscriptions were
// applied (the initial subscription is not counted).
func (a *Agent) Resubscribes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resubscribes
}

func filterIndication(ind *e2.Indication, sliceIDs []uint32) *e2.Indication {
	want := make(map[uint32]bool, len(sliceIDs))
	for _, id := range sliceIDs {
		want[id] = true
	}
	out := &e2.Indication{Slot: ind.Slot, Cell: ind.Cell}
	for _, u := range ind.UEs {
		if want[u.SliceID] {
			out.UEs = append(out.UEs, u)
		}
	}
	for _, s := range ind.Slices {
		if want[s.SliceID] {
			out.Slices = append(out.Slices, s)
		}
	}
	return out
}

package ric

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/e2"
	"waran/internal/obs/trace"
)

// RANControl is the control surface an E2 node exposes to its agent — the
// "host functions" the gNB makes available to the RIC in the paper's
// design. core.GNB implements it.
type RANControl interface {
	// Snapshot reports current KPM state.
	Snapshot(cell uint32) *e2.Indication
	// Apply executes one control action.
	Apply(c *e2.ControlRequest) error
}

// TracedRANControl is optionally implemented by RANControl targets (core.GNB
// does) to receive the causal trace context of a control action, so the
// apply, any supervised canary swap, and the first affected slot join the
// decision's span tree. Agents fall back to Apply when the target doesn't
// implement it or the control is untraced.
type TracedRANControl interface {
	ApplyTraced(c *e2.ControlRequest, ctx trace.Context) error
}

// AgentConfig is the validated construction surface of an Agent — nothing
// is poked post-construction. The zero value is a working default
// (untraced, unbatched, no liveness bound).
type AgentConfig struct {
	// Cell identifies which cell this agent reports.
	Cell uint32
	// LivenessTimeout, when > 0, bounds the silence tolerated from the
	// RIC: if no frame (heartbeats included) arrives for this long, the
	// agent declares the association dead, closes the conn, and the
	// Start-returned channel yields e2.ErrAssociationDead. Set it to a
	// few multiples of the RIC's heartbeat interval. Zero disables
	// liveness tracking (the pre-resilience behaviour).
	LivenessTimeout time.Duration
	// Tracer, when non-nil, lets the agent negotiate trace propagation
	// with the RIC and record indication.encode/transport spans on the gNB
	// plane.
	Tracer *trace.Tracer
	// Batch configures windowed indication batching. It only takes effect
	// on associations whose RIC advertised e2.BatchCapabilityBit; against
	// older peers the agent keeps sending per-slot indications.
	Batch BatchConfig
}

// Validate checks the configuration.
func (c AgentConfig) Validate() error {
	if c.LivenessTimeout < 0 {
		return fmt.Errorf("ric: negative liveness timeout %v", c.LivenessTimeout)
	}
	return c.Batch.Validate()
}

// Agent is the gNB-side endpoint of the E2-lite association: it answers the
// RIC's subscription (including mid-association re-subscriptions), streams
// indications at the subscribed cadence (driven by Tick from the MAC slot
// loop), applies incoming control actions, and echoes heartbeats so the
// RIC can track liveness.
//
// With batching configured and negotiated, due-slot indications coalesce
// into one e2.IndicationBatch frame per window; a partial window is flushed
// once its oldest entry has waited Batch.FlushInterval (checked from Tick,
// so flush latency is quantized to the slot cadence) or when Flush is
// called at teardown.
type Agent struct {
	conn *e2.Conn
	ran  RANControl
	cfg  AgentConfig

	subscribed  atomic.Bool
	periodSlots atomic.Uint64 // metric-exempt: subscription cadence, not telemetry
	dead        atomic.Bool
	peerTraced  atomic.Bool // RIC advertised e2.TraceCapabilityBit and we accepted
	peerBatched atomic.Bool // both sides advertised batch capability
	peerBusy    atomic.Bool // RIC advertised e2.BusyCapabilityBit and we accepted

	// pausedUntilNs, when in the future, is a busy-frame backpressure pause:
	// due-slot indications are shed at the source until it passes.
	pausedUntilNs atomic.Int64 // metric-exempt: pause deadline, not telemetry

	// batchMu guards the pending window: Tick appends from the slot loop
	// while a re-subscription on the receive loop may renegotiate
	// capability mid-window.
	batchMu       sync.Mutex
	pending       []e2.Indication
	pendingSince  time.Time // when the oldest pending indication was buffered
	pendingBuild  time.Time // buildStart of the first pending indication (traced)
	pendingTraced bool

	mu           sync.Mutex
	sliceFilter  []uint32
	indications  uint64
	batchFrames  uint64
	controlsOK   uint64
	controlsFail uint64
	resubscribes uint64
	busyFrames   uint64 // TypeBusy backpressure frames received mid-association
	pausedSheds  uint64 // due-slot indications shed at the source while paused
	lostInFlush  uint64 // window remainder lost when a Flush send died mid-loop
}

// NewAgent creates an agent for one association from a validated
// configuration.
func NewAgent(conn *e2.Conn, ran RANControl, cfg AgentConfig) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Batch = cfg.Batch.withDefaults()
	return &Agent{conn: conn, ran: ran, cfg: cfg}, nil
}

// Cell returns the cell this agent reports.
func (a *Agent) Cell() uint32 { return a.cfg.Cell }

// Start blocks until the RIC's subscription request arrives, acknowledges
// it, and spawns the control-receive loop (plus the liveness watchdog when
// LivenessTimeout is set). The returned channel yields the terminal error
// of the receive loop (nil on clean shutdown, e2.ErrAssociationDead when
// liveness failed).
func (a *Agent) Start() (<-chan error, error) {
	if a.cfg.LivenessTimeout > 0 {
		// A RIC that never subscribes is as dead as one that stops
		// heartbeating: bound the subscription wait too.
		_ = a.conn.SetReadDeadline(time.Now().Add(2 * a.cfg.LivenessTimeout))
	}
	m, err := a.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("ric: agent: waiting for subscription: %w", err)
	}
	if a.cfg.LivenessTimeout > 0 {
		_ = a.conn.SetReadDeadline(time.Time{})
	}
	if m.Type == e2.TypeBusy {
		// Admission refusal: the RIC is overloaded and never subscribed.
		// Surface the typed error so the supervisor can honor the
		// retry-after hint instead of hammering the plain backoff schedule.
		return nil, &e2.BusyError{RetryAfter: m.Busy.RetryAfter(), Reason: m.Busy.Reason}
	}
	if m.Type != e2.TypeSubscriptionRequest {
		refusal := &e2.Message{Type: e2.TypeError, Error: &e2.ErrorBody{Reason: "expected subscription-request"}}
		_ = a.conn.Send(refusal)
		return nil, fmt.Errorf("ric: agent: unexpected first message %s", m.Type)
	}
	if err := a.applySubscription(m); err != nil {
		return nil, err
	}

	done := make(chan error, 1)
	recvDone := make(chan struct{})
	go func() {
		err := a.recvLoop()
		close(recvDone)
		done <- err
	}()
	if a.cfg.LivenessTimeout > 0 {
		go a.watchdog(recvDone)
	}
	return done, nil
}

// applySubscription installs (or replaces) the subscription state and acks
// it — shared by the initial handshake and mid-association re-subscribes.
func (a *Agent) applySubscription(m *e2.Message) error {
	period := uint64(m.Subscription.ReportPeriodMs)
	if period == 0 {
		period = 100
	}
	a.periodSlots.Store(period) // 1 ms slots: ms == slots
	a.mu.Lock()
	a.sliceFilter = append([]uint32(nil), m.Subscription.SliceIDs...)
	a.mu.Unlock()
	ack := &e2.Message{
		Type:             e2.TypeSubscriptionResponse,
		RequestID:        m.RequestID,
		RANFunction:      m.RANFunction,
		SubscriptionResp: &e2.SubscriptionResponse{Accepted: true},
	}
	// Capability negotiation: a capable RIC sets reserved bits in
	// RANFunction (old agents echo them untouched); a capable agent
	// answers with the matching tokens in Reason (old RICs only read
	// Reason on rejection, and the trace-only RIC of the previous protocol
	// generation compares Reason against exactly the trace token — so the
	// batch token is appended only when the RIC advertised batching, which
	// that generation never does). Indications get trace trailers or
	// batched framing only after both halves advertised.
	reason := ""
	if m.RANFunction&e2.TraceCapabilityBit != 0 && a.cfg.Tracer.Enabled() {
		reason = e2.AppendCapabilityToken(reason, e2.TraceCapabilityToken)
		a.peerTraced.Store(true)
	} else {
		a.peerTraced.Store(false)
	}
	if m.RANFunction&e2.BatchCapabilityBit != 0 && a.cfg.Batch.enabled() {
		reason = e2.AppendCapabilityToken(reason, e2.BatchCapabilityToken)
		a.peerBatched.Store(true)
	} else {
		a.peerBatched.Store(false)
	}
	if m.RANFunction&e2.BusyCapabilityBit != 0 {
		reason = e2.AppendCapabilityToken(reason, e2.OverloadCapabilityToken)
		a.peerBusy.Store(true)
	} else {
		a.peerBusy.Store(false)
	}
	ack.SubscriptionResp.Reason = reason
	if err := a.conn.Send(ack); err != nil {
		return err
	}
	a.subscribed.Store(true)
	return nil
}

// watchdog declares the association dead when nothing has arrived for
// LivenessTimeout, closing the conn so the blocked recvLoop returns
// promptly instead of hanging on a half-open TCP stream.
func (a *Agent) watchdog(recvDone <-chan struct{}) {
	interval := a.cfg.LivenessTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-recvDone:
			return
		case <-ticker.C:
			if time.Since(a.conn.LastRecv()) > a.cfg.LivenessTimeout {
				a.dead.Store(true)
				a.conn.Close()
				return
			}
		}
	}
}

func (a *Agent) recvLoop() error {
	for {
		m, err := a.conn.Recv()
		if err != nil {
			if a.dead.Load() {
				return e2.ErrAssociationDead
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		switch m.Type {
		case e2.TypeControlRequest:
			applyErr := a.applyControl(m)
			ack := &e2.Message{
				Type:        e2.TypeControlAck,
				RequestID:   m.RequestID,
				RANFunction: m.RANFunction,
				ControlAck:  &e2.ControlAck{Accepted: applyErr == nil},
			}
			a.mu.Lock()
			if applyErr == nil {
				a.controlsOK++
			} else {
				a.controlsFail++
				ack.ControlAck.Reason = applyErr.Error()
			}
			a.mu.Unlock()
			if err := a.conn.Send(ack); err != nil {
				return err
			}
		case e2.TypeHeartbeat:
			// Echo heartbeats so both sides can detect liveness.
			if err := a.conn.Send(&e2.Message{Type: e2.TypeHeartbeat}); err != nil {
				return err
			}
		case e2.TypeBusy:
			// Mid-association backpressure: the RIC is in brownout and asks
			// us to pause KPM generation. Due-slot indications during the
			// pause are shed at the source — the cheapest possible shed,
			// nothing is encoded or sent — and counted for the ledger.
			a.pausedUntilNs.Store(time.Now().Add(m.Busy.RetryAfter()).UnixNano())
			a.mu.Lock()
			a.busyFrames++
			a.mu.Unlock()
		case e2.TypeSubscriptionRequest:
			// Mid-association re-subscription: the RIC adjusts cadence or
			// slice filter (or re-asserts after its own restart). Apply
			// the new parameters and re-ack instead of dropping it.
			a.mu.Lock()
			a.resubscribes++
			a.mu.Unlock()
			if err := a.applySubscription(m); err != nil {
				return err
			}
		default:
			// Unknown or out-of-place message: report it to the peer
			// instead of silently dropping the frame.
			reply := &e2.Message{
				Type:      e2.TypeError,
				RequestID: m.RequestID,
				Error:     &e2.ErrorBody{Reason: fmt.Sprintf("agent: unexpected %s", m.Type)},
			}
			if err := a.conn.Send(reply); err != nil {
				return err
			}
		}
	}
}

// applyControl routes a control request into the RAN, through the traced
// path when the request carries a live trace context and the target
// understands it.
func (a *Agent) applyControl(m *e2.Message) error {
	if m.Trace.Valid() {
		if tc, ok := a.ran.(TracedRANControl); ok {
			return tc.ApplyTraced(m.Control, m.Trace)
		}
	}
	return a.ran.Apply(m.Control)
}

// Tick is called by the owner after each MAC slot; at the subscribed
// cadence it snapshots KPM state and sends (or, on a batched association,
// buffers) an indication. On every slot — due or not — it checks the
// pending window's flush deadline.
func (a *Agent) Tick(slot uint64) error {
	if !a.subscribed.Load() {
		return nil
	}
	period := a.periodSlots.Load()
	if paused := a.paused(); paused {
		// Busy-frame pause: shed due-slot indications at the source and
		// hold partial windows too — flushing mid-pause would defeat the
		// backpressure the RIC asked for.
		if period != 0 && slot%period == 0 {
			a.mu.Lock()
			a.pausedSheds++
			a.mu.Unlock()
		}
		return nil
	}
	if period == 0 || slot%period != 0 {
		return a.flushIfOverdue()
	}
	tracing := a.cfg.Tracer.Enabled() && a.peerTraced.Load()
	var buildStart time.Time
	if tracing {
		buildStart = time.Now()
	}
	ind := a.ran.Snapshot(a.cfg.Cell)
	a.mu.Lock()
	filter := a.sliceFilter
	a.indications++
	a.mu.Unlock()
	if len(filter) > 0 {
		ind = filterIndication(ind, filter)
	}
	if a.peerBatched.Load() && a.cfg.Batch.enabled() {
		return a.bufferIndication(ind, tracing, buildStart)
	}
	msg := &e2.Message{
		Type:        e2.TypeIndication,
		RANFunction: e2.RANFunctionKPM,
		Indication:  ind,
	}
	if !tracing {
		return a.conn.Send(msg)
	}
	return a.sendTraced(msg, slot, buildStart)
}

// sendTraced sends msg carrying a fresh trace context and records the
// indication.encode + transport spans. The wire carries the transport
// span's ID so the RIC's decode span parents to it; buildStart anchors the
// encode span at the moment KPM state was snapshotted.
func (a *Agent) sendTraced(msg *e2.Message, slot uint64, buildStart time.Time) error {
	ctx := trace.NewContext()
	transportID := trace.NewSpanID()
	msg.Trace = trace.Context{TraceID: ctx.TraceID, SpanID: transportID}
	sendStart := time.Now()
	err := a.conn.Send(msg)
	sendDur := time.Since(sendStart)
	encDur := a.conn.LastEncodeDur()
	a.cfg.Tracer.Record(&trace.Span{
		TraceID: ctx.TraceID, SpanID: ctx.SpanID,
		Name: trace.SpanIndicationEncode, Plane: trace.PlaneGNB,
		Slot: slot, Cell: a.cfg.Cell,
		StartNs: buildStart.UnixNano(),
		DurNs:   int64(sendStart.Sub(buildStart) + encDur),
	})
	sp := &trace.Span{
		TraceID: ctx.TraceID, SpanID: transportID, Parent: ctx.SpanID,
		Name: trace.SpanTransport, Plane: trace.PlaneGNB,
		Slot: slot, Cell: a.cfg.Cell,
		StartNs: sendStart.Add(encDur).UnixNano(),
		DurNs:   int64(sendDur - encDur),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	a.cfg.Tracer.Record(sp)
	return err
}

// bufferIndication appends one due-slot indication to the pending window,
// flushing when the window fills.
func (a *Agent) bufferIndication(ind *e2.Indication, tracing bool, buildStart time.Time) error {
	a.batchMu.Lock()
	if len(a.pending) == 0 {
		a.pendingSince = time.Now()
		a.pendingBuild = buildStart
		a.pendingTraced = tracing
	}
	a.pending = append(a.pending, *ind)
	full := len(a.pending) >= a.cfg.Batch.Window
	a.batchMu.Unlock()
	if full {
		return a.Flush()
	}
	return nil
}

// flushIfOverdue flushes a partial window whose oldest indication has
// waited past the flush interval.
func (a *Agent) flushIfOverdue() error {
	a.batchMu.Lock()
	overdue := len(a.pending) > 0 && time.Since(a.pendingSince) >= a.cfg.Batch.FlushInterval
	a.batchMu.Unlock()
	if !overdue {
		return nil
	}
	return a.Flush()
}

// Flush sends the pending indication window immediately (a no-op when
// nothing is buffered). Owners call it at teardown so buffered indications
// are not lost with the association.
func (a *Agent) Flush() error {
	a.batchMu.Lock()
	pending := a.pending
	buildStart := a.pendingBuild
	tracing := a.pendingTraced
	a.pending = nil
	a.batchMu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	if !a.peerBatched.Load() {
		// The peer renegotiated away from batching mid-window (RIC restart
		// re-subscribed without the capability): deliver the buffered
		// indications individually rather than sending a frame it no
		// longer expects.
		for i := range pending {
			msg := &e2.Message{Type: e2.TypeIndication, RANFunction: e2.RANFunctionKPM, Indication: &pending[i]}
			if err := a.conn.Send(msg); err != nil {
				// The conn died mid-loop: the rest of the window dies with
				// it. Account for every undelivered indication (including
				// the one that failed) instead of silently forgetting them.
				a.mu.Lock()
				a.lostInFlush += uint64(len(pending) - i)
				a.mu.Unlock()
				return err
			}
		}
		return nil
	}
	a.mu.Lock()
	a.batchFrames++
	a.mu.Unlock()
	msg := &e2.Message{
		Type:        e2.TypeIndicationBatch,
		RANFunction: e2.RANFunctionKPM,
		Batch:       &e2.IndicationBatch{Indications: pending},
	}
	if !tracing || !a.peerTraced.Load() {
		return a.conn.Send(msg)
	}
	return a.sendTraced(msg, pending[0].Slot, buildStart)
}

// paused reports whether a busy-frame backpressure pause is in effect.
func (a *Agent) paused() bool {
	u := a.pausedUntilNs.Load()
	return u != 0 && time.Now().UnixNano() < u
}

// Paused reports whether the agent is currently shedding at the source
// because of a busy-frame backpressure pause.
func (a *Agent) Paused() bool { return a.paused() }

// OverloadCounters reports agent-side overload accounting: busy frames
// received mid-association, due-slot indications shed at the source while
// paused, and indications lost when a Flush send died mid-window.
func (a *Agent) OverloadCounters() (busyFrames, pausedSheds, lostInFlush uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.busyFrames, a.pausedSheds, a.lostInFlush
}

// PendingBatched reports how many indications are buffered awaiting a
// window flush.
func (a *Agent) PendingBatched() int {
	a.batchMu.Lock()
	defer a.batchMu.Unlock()
	return len(a.pending)
}

// Batched reports whether batching was negotiated on this association.
func (a *Agent) Batched() bool { return a.peerBatched.Load() }

// Period returns the subscribed indication cadence in slots (0 before the
// first subscription).
func (a *Agent) Period() uint64 { return a.periodSlots.Load() }

// Counters reports indication and control outcomes.
func (a *Agent) Counters() (indications, controlsOK, controlsFail uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.indications, a.controlsOK, a.controlsFail
}

// BatchFrames reports how many batched indication frames were sent.
func (a *Agent) BatchFrames() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.batchFrames
}

// Resubscribes reports how many mid-association re-subscriptions were
// applied (the initial subscription is not counted).
func (a *Agent) Resubscribes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resubscribes
}

func filterIndication(ind *e2.Indication, sliceIDs []uint32) *e2.Indication {
	want := make(map[uint32]bool, len(sliceIDs))
	for _, id := range sliceIDs {
		want[id] = true
	}
	out := &e2.Indication{Slot: ind.Slot, Cell: ind.Cell}
	for _, u := range ind.UEs {
		if want[u.SliceID] {
			out.UEs = append(out.UEs, u)
		}
	}
	for _, s := range ind.Slices {
		if want[s.SliceID] {
			out.Slices = append(out.Slices, s)
		}
	}
	return out
}

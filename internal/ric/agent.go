package ric

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"waran/internal/e2"
)

// RANControl is the control surface an E2 node exposes to its agent — the
// "host functions" the gNB makes available to the RIC in the paper's
// design. core.GNB implements it.
type RANControl interface {
	// Snapshot reports current KPM state.
	Snapshot(cell uint32) *e2.Indication
	// Apply executes one control action.
	Apply(c *e2.ControlRequest) error
}

// Agent is the gNB-side endpoint of the E2-lite association: it answers the
// RIC's subscription, streams indications at the subscribed cadence (driven
// by Tick from the MAC slot loop), and applies incoming control actions.
type Agent struct {
	conn *e2.Conn
	ran  RANControl
	Cell uint32

	subscribed   atomic.Bool
	periodSlots  atomic.Uint64
	sliceFilter  []uint32
	mu           sync.Mutex
	indications  uint64
	controlsOK   uint64
	controlsFail uint64
}

// NewAgent creates an agent for one association.
func NewAgent(conn *e2.Conn, ran RANControl, cell uint32) *Agent {
	return &Agent{conn: conn, ran: ran, Cell: cell}
}

// Start blocks until the RIC's subscription request arrives, acknowledges
// it, and spawns the control-receive loop. The returned channel yields the
// terminal error of the receive loop (nil on clean shutdown).
func (a *Agent) Start() (<-chan error, error) {
	m, err := a.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("ric: agent: waiting for subscription: %w", err)
	}
	if m.Type != e2.TypeSubscriptionRequest {
		refusal := &e2.Message{Type: e2.TypeError, Error: &e2.ErrorBody{Reason: "expected subscription-request"}}
		_ = a.conn.Send(refusal)
		return nil, fmt.Errorf("ric: agent: unexpected first message %s", m.Type)
	}
	period := uint64(m.Subscription.ReportPeriodMs)
	if period == 0 {
		period = 100
	}
	a.periodSlots.Store(period) // 1 ms slots: ms == slots
	a.sliceFilter = m.Subscription.SliceIDs
	ack := &e2.Message{
		Type:             e2.TypeSubscriptionResponse,
		RequestID:        m.RequestID,
		RANFunction:      m.RANFunction,
		SubscriptionResp: &e2.SubscriptionResponse{Accepted: true},
	}
	if err := a.conn.Send(ack); err != nil {
		return nil, err
	}
	a.subscribed.Store(true)

	done := make(chan error, 1)
	go func() { done <- a.recvLoop() }()
	return done, nil
}

func (a *Agent) recvLoop() error {
	for {
		m, err := a.conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		switch m.Type {
		case e2.TypeControlRequest:
			applyErr := a.ran.Apply(m.Control)
			ack := &e2.Message{
				Type:        e2.TypeControlAck,
				RequestID:   m.RequestID,
				RANFunction: m.RANFunction,
				ControlAck:  &e2.ControlAck{Accepted: applyErr == nil},
			}
			a.mu.Lock()
			if applyErr == nil {
				a.controlsOK++
			} else {
				a.controlsFail++
				ack.ControlAck.Reason = applyErr.Error()
			}
			a.mu.Unlock()
			if err := a.conn.Send(ack); err != nil {
				return err
			}
		case e2.TypeHeartbeat:
			// Echo heartbeats so both sides can detect liveness.
			if err := a.conn.Send(&e2.Message{Type: e2.TypeHeartbeat}); err != nil {
				return err
			}
		}
	}
}

// Tick is called by the owner after each MAC slot; at the subscribed
// cadence it snapshots KPM state and sends an indication.
func (a *Agent) Tick(slot uint64) error {
	if !a.subscribed.Load() {
		return nil
	}
	period := a.periodSlots.Load()
	if period == 0 || slot%period != 0 {
		return nil
	}
	ind := a.ran.Snapshot(a.Cell)
	if len(a.sliceFilter) > 0 {
		ind = filterIndication(ind, a.sliceFilter)
	}
	a.mu.Lock()
	a.indications++
	a.mu.Unlock()
	return a.conn.Send(&e2.Message{
		Type:        e2.TypeIndication,
		RANFunction: e2.RANFunctionKPM,
		Indication:  ind,
	})
}

// Counters reports indication and control outcomes.
func (a *Agent) Counters() (indications, controlsOK, controlsFail uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.indications, a.controlsOK, a.controlsFail
}

func filterIndication(ind *e2.Indication, sliceIDs []uint32) *e2.Indication {
	want := make(map[uint32]bool, len(sliceIDs))
	for _, id := range sliceIDs {
		want[id] = true
	}
	out := &e2.Indication{Slot: ind.Slot, Cell: ind.Cell}
	for _, u := range ind.UEs {
		if want[u.SliceID] {
			out.UEs = append(out.UEs, u)
		}
	}
	for _, s := range ind.Slices {
		if want[s.SliceID] {
			out.Slices = append(out.Slices, s)
		}
	}
	return out
}

package ric

import (
	"testing"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// newWidenCodec builds a fresh plugin-wrapped codec instance (each endpoint
// needs its own sandbox).
func newWidenCodec(t *testing.T) e2.Codec {
	t.Helper()
	c, err := NewPluginCodecWAT("widen8to12", plugins.Widen8To12CommWAT, e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEndToEndRICControlsGNB runs the full §4B pipeline over loopback TCP:
// gNB agent streams KPM indications through a vendor-adaptation
// communication plugin; the RIC's Wasm xApps decide handovers and SLA
// boosts; control actions flow back and are applied to the live gNB.
func TestEndToEndRICControlsGNB(t *testing.T) {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Slice 1 under-target (tiny weight), slice 2 fine.
	mt, err := core.NewPluginScheduler("mt", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := gnb.Slices.AddSlice(1, "under", 20e6, mt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gnb.Slices.AddSlice(2, "fine", 5e6, rr, nil); err != nil {
		t.Fatal(err)
	}

	// UE 1: healthy. UE 2: at the MCS floor -> traffic steering target.
	ue1 := ran.NewUE(1, 1, 26)
	ue1.Traffic = ran.NewCBR(8e6)
	ue2 := ran.NewUE(2, 2, 2)
	ue2.Traffic = ran.NewCBR(1e6)
	for _, u := range []*ran.UE{ue1, ue2} {
		if err := gnb.AttachUE(u); err != nil {
			t.Fatal(err)
		}
	}

	// RIC with both xApps, listening on loopback.
	r := MustNew(Config{ReportPeriodMs: 20})
	if _, err := r.AddXAppWAT("steer", plugins.TrafficSteerXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}

	lis, err := e2.Listen("127.0.0.1:0", newWidenCodec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	ricErr := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			ricErr <- err
			return
		}
		ricErr <- r.ServeConn(conn, stop)
	}()

	conn, err := e2.Dial(lis.Addr().String(), newWidenCodec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	agent, err := NewAgent(conn, gnb, AgentConfig{Cell: 7})
	if err != nil {
		t.Fatal(err)
	}
	agentDone, err := agent.Start()
	if err != nil {
		t.Fatal(err)
	}

	// Drive the MAC loop; the agent reports every 20 slots.
	deadline := time.After(5 * time.Second)
	for slot := 0; ; slot++ {
		gnb.Step()
		if err := agent.Tick(uint64(slot)); err != nil {
			t.Fatalf("tick: %v", err)
		}
		// Success condition: UE 2 handed over (detached) AND slice 1's
		// weight boosted by the SLA xApp.
		_, ue2Present := gnb.UE(2)
		if !ue2Present && s1.Weight() == 2.0 {
			break
		}
		select {
		case <-deadline:
			ind, ok, fail := agent.Counters()
			t.Fatalf("controls not applied in time: ue2Present=%v weight=%v (ind=%d ok=%d fail=%d)",
				ue2Present, s1.Weight(), ind, ok, fail)
		default:
		}
		// Pace slightly so the network round trips interleave.
		if slot%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	close(stop)
	conn.Close()
	<-agentDone
	ind, controls := r.Counters()
	if ind == 0 || controls == 0 {
		t.Fatalf("RIC processed %d indications, emitted %d controls", ind, controls)
	}
}

// TestInterXAppMessaging exercises the ric host functions: the ping xApp
// posts a counter to the pong xApp's mailbox on every indication.
func TestInterXAppMessaging(t *testing.T) {
	r := MustNew(Config{})
	if _, err := r.AddXAppWAT("ping", plugins.PingXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}
	pong, err := r.AddXAppWAT("pong", plugins.PongXAppWAT, wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	ind := &e2.Indication{Slot: 1, Cell: 1}
	for i := 0; i < 3; i++ {
		if got := r.HandleIndication(ind); len(got) != 0 {
			t.Fatalf("unexpected controls: %v", got)
		}
	}
	// ping ran 3 times; pong drained mailbox on invocations 2 and 3, so the
	// last counter it saw is from ping's 3rd run.
	last, ok := pong.Plugin().Instance().GlobalValue("last_counter")
	if !ok {
		t.Fatal("pong does not export last_counter")
	}
	if last != 3 {
		t.Fatalf("pong last_counter = %d, want 3", last)
	}
}

// TestPluginCodecRoundTrip checks the widen shim transforms frames
// reversibly and that the vendor wire format really is 12-bit-widened.
func TestPluginCodecRoundTrip(t *testing.T) {
	codec := newWidenCodec(t)
	msg := &e2.Message{
		Type:        e2.TypeControlRequest,
		RequestID:   9,
		RANFunction: e2.RANFunctionRC,
		Control: &e2.ControlRequest{
			Action: e2.ActionSetSliceTarget, SliceID: 3, Value: 12e6, Text: "x",
		},
	}
	wire, err := codec.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := (e2.BinaryCodec{}).Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 2*len(plain) {
		t.Fatalf("wire frame %d bytes, want widened %d", len(wire), 2*len(plain))
	}
	// Verify the 12-bit widening of the first byte.
	if got, want := uint16(wire[0])|uint16(wire[1])<<8, uint16(plain[0])<<4; got != want {
		t.Fatalf("first field = %#x, want %#x", got, want)
	}
	back, err := codec.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Control == nil || back.Control.SliceID != 3 || back.Control.Value != 12e6 {
		t.Fatalf("round trip mismatch: %+v", back.Control)
	}
}

package ric

import (
	"sync"
	"testing"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// TestOneRICManyGNBs runs one near-RT RIC serving two gNBs concurrently —
// the multivendor scenario the paper motivates: the same xApp bytecode
// controls both cells regardless of whose equipment they are.
func TestOneRICManyGNBs(t *testing.T) {
	r := MustNew(Config{ReportPeriodMs: 10})
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}

	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	stop := make(chan struct{})
	var serveWG sync.WaitGroup
	serveWG.Add(2)
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := lis.Accept()
			if err != nil {
				t.Error(err)
				return
			}
			go func() {
				defer serveWG.Done()
				_ = r.ServeConn(conn, stop)
			}()
		}
	}()

	type cell struct {
		gnb   *core.GNB
		agent *Agent
		slice uint32
	}
	mkCell := func(cellID uint32) *cell {
		gnb, err := core.NewGNB(ran.CellConfig{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
		if err != nil {
			t.Fatal(err)
		}
		// Over-ambitious target so the SLA xApp always has work.
		if _, err := gnb.Slices.AddSlice(1, "tenant", 100e6, rr, nil); err != nil {
			t.Fatal(err)
		}
		ue := ran.NewUE(1, 1, 20)
		ue.Traffic = ran.NewCBR(3e6)
		if err := gnb.AttachUE(ue); err != nil {
			t.Fatal(err)
		}
		conn, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		agent, err := NewAgent(conn, gnb, AgentConfig{Cell: cellID})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := agent.Start(); err != nil {
			t.Fatal(err)
		}
		return &cell{gnb: gnb, agent: agent, slice: 1}
	}

	cells := []*cell{mkCell(1), mkCell(2)}

	// Drive both cells; both slices are far under target, so the SLA xApp
	// should boost both weights.
	deadline := time.After(5 * time.Second)
	for slot := 0; ; slot++ {
		boosted := 0
		for _, c := range cells {
			c.gnb.Step()
			if err := c.agent.Tick(uint64(slot)); err != nil {
				t.Fatal(err)
			}
			s, _ := c.gnb.Slices.Slice(c.slice)
			if s.Weight() == 2.0 {
				boosted++
			}
		}
		if boosted == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("xApp guidance did not reach both cells (boosted=%d)", boosted)
		default:
		}
		if slot%100 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	// Both cells' history lands in the shared KPM store under distinct IDs.
	time.Sleep(10 * time.Millisecond)
	seen := map[uint32]bool{}
	for _, id := range r.KPM.Cells() {
		seen[id] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("KPM store cells = %v", r.KPM.Cells())
	}

	close(stop)
}

package ric

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/obs"
	"waran/internal/obs/trace"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
)

// CitySimConfig parameterizes the city-scale experiment: a sharded cell
// fleet with aggregate UE populations on the gNB side, a sharded RIC with
// windowed KPM batching on the other, joined by Cells x Sectors live E2
// associations over loopback.
type CitySimConfig struct {
	// Cells is the fleet size (default 256).
	Cells int
	// UEsPerCell is each cell's modeled population (default 4096).
	UEsPerCell int
	// Sectors is the number of E2 associations per cell — one agent per
	// sector, all observing the same cell MAC (default 4, so the default
	// fleet holds 1024 concurrent associations).
	Sectors int
	// Slots is how many MAC slots to run (default 1500).
	Slots int
	// RICShards is the RIC association shard count (default 16).
	RICShards int
	// BatchWindow is the agent-side KPM batching window in report periods
	// (default 8; 0 or 1 disables batching).
	BatchWindow int
	// ReportPeriodMs is the indication cadence (default 20; 1 ms slots).
	ReportPeriodMs uint32
	// ActiveK is each cell fleet's per-slot scheduling window (default 32).
	ActiveK int
	// FlushInterval bounds a partial batch window's dwell (default 30 s —
	// effectively count-driven windows: at city scale one simulated slot
	// can cost tens of wall milliseconds, so a wall deadline sized to the
	// simulated cadence would truncate every window and measure nothing).
	FlushInterval time.Duration
	// Seed selects per-cell population draws (0 behaves as 1).
	Seed int64
	// Pacing is slept after every slot so association goroutines get
	// wall-clock room on saturated boxes (default 50 us).
	Pacing time.Duration
	// SpanCap is each plane's span-ring capacity (default 32768).
	SpanCap int
	// Overload, when non-nil, enables the RIC's overload-control layer
	// (admission gate, bounded queued dispatch, brownout state machine) for
	// the run — the happy-path no-regression arm of the overload work.
	Overload *OverloadConfig
	// Obs, when non-nil, receives the RIC's instruments (per-shard series
	// included) and the result embeds its snapshot.
	Obs *obs.Registry
}

func (c CitySimConfig) withDefaults() CitySimConfig {
	if c.Cells <= 0 {
		c.Cells = 256
	}
	if c.UEsPerCell <= 0 {
		c.UEsPerCell = 4096
	}
	if c.Sectors <= 0 {
		c.Sectors = 4
	}
	if c.Slots <= 0 {
		c.Slots = 1500
	}
	if c.RICShards <= 0 {
		c.RICShards = 16
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 8
	}
	if c.ReportPeriodMs == 0 {
		c.ReportPeriodMs = 20
	}
	if c.ActiveK <= 0 {
		c.ActiveK = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Pacing <= 0 {
		c.Pacing = 50 * time.Microsecond
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 30 * time.Second
	}
	if c.SpanCap <= 0 {
		c.SpanCap = 1 << 15
	}
	return c
}

// CitySimResult reports the sustained city-scale throughput and the
// tracer-derived control-loop latency.
type CitySimResult struct {
	Cells        int   `json:"cells"`
	UEsPerCell   int   `json:"ues_per_cell"`
	ModeledUEs   int   `json:"modeled_ues"`
	Sectors      int   `json:"sectors"`
	Associations int64 `json:"associations_live"`
	RICShards    int   `json:"ric_shards"`
	FleetShards  int   `json:"fleet_shards"`
	BatchWindow  int   `json:"batch_window"`
	Slots        int   `json:"slots"`

	WallMs          float64 `json:"wall_ms"`
	SlotsPerSec     float64 `json:"slots_per_sec"`
	CellSlotsPerSec float64 `json:"cell_slots_per_sec"`

	Indications         uint64  `json:"indications_processed"`
	IndicationsPerSec   float64 `json:"indications_per_sec"`
	BatchFrames         uint64  `json:"batch_frames"`
	IndicationsPerBatch float64 `json:"indications_per_batch"`
	Controls            uint64  `json:"controls_emitted"`
	Refused             uint64  `json:"associations_refused"`

	// ShardSpreadMin/Max are the smallest and largest per-RIC-shard
	// association counts — the hash spreading the fan-in.
	ShardSpreadMin uint64 `json:"shard_assoc_min"`
	ShardSpreadMax uint64 `json:"shard_assoc_max"`

	FleetDeliveredBits int64 `json:"fleet_delivered_bits"`
	FleetDroppedBits   int64 `json:"fleet_dropped_bits"`

	// StripeP99Us is the worst per-fleet-shard p99 wall time to step one
	// stripe of cells; StripeOverruns counts slot-budget misses.
	StripeP99Us    float64 `json:"stripe_p99_us"`
	StripeOverruns uint64  `json:"stripe_overruns"`

	// P99ControlLoopUs is the p99 of complete traced control loops
	// (indication.encode through slot.effect) over CompleteLoops samples.
	// At batch window W it includes up to W report periods of agent-side
	// coalescing dwell by construction — the latency cost batching trades
	// for fan-in throughput.
	P99ControlLoopUs float64 `json:"p99_control_loop_us"`
	// P99RICLoopUs is the p99 of the dwell-free tail of the same loops:
	// RIC-side decode through the slot.effect close — the machinery's own
	// latency at scale.
	P99RICLoopUs  float64 `json:"p99_ric_loop_us"`
	CompleteLoops int     `json:"complete_loops"`
	// Hops is the per-hop latency distribution across all spans retained.
	Hops []trace.HopStat `json:"hops"`

	// Overload is the RIC's shed ledger and brownout accounting when the
	// overload guard was enabled for the run (nil otherwise).
	Overload *OverloadStats `json:"overload,omitempty"`

	Obs map[string]any `json:"obs,omitempty"`
}

// RunCitySim runs the city-scale experiment: Cells cells each modeling
// UEsPerCell UEs through a ran.UEFleet, stepped by the sharded core.Fleet
// driver; Cells x Sectors E2 agents hold concurrent associations to one
// sharded RIC running the SLA-assurance xApp, coalescing KPM reports into
// batched frames. The result reports sustained slots/sec, indications/sec
// and the tracer-derived p99 control-loop latency.
func RunCitySim(cfg CitySimConfig) (*CitySimResult, error) {
	cfg = cfg.withDefaults()
	tracer := trace.NewTracer(cfg.SpanCap)

	// --- gNB side: the sharded cell fleet --------------------------------
	fleet, err := core.NewFleet(ran.CellConfig{}, core.FleetDriverConfig{Cells: cfg.Cells})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	const (
		iotSlice = 1
		mbbSlice = 2
	)
	for c := 0; c < cfg.Cells; c++ {
		gnb := fleet.Cell(c)
		if _, err := gnb.Slices.AddSlice(iotSlice, "iot", 100e6, sched.RoundRobin{}, nil); err != nil {
			return nil, err
		}
		if _, err := gnb.Slices.AddSlice(mbbSlice, "mbb", 100e6, sched.RoundRobin{}, nil); err != nil {
			return nil, err
		}
		uf, err := ran.NewUEFleet(ran.FleetConfig{
			UEs:      cfg.UEsPerCell,
			ActiveK:  cfg.ActiveK,
			SliceIDs: []uint32{iotSlice, mbbSlice},
			Seed:     cfg.Seed + int64(c),
		})
		if err != nil {
			return nil, err
		}
		if err := gnb.AttachFleet(uf); err != nil {
			return nil, err
		}
	}
	// The iot slice runs a pooled Wasm scheduler per fleet shard (compiled
	// once fleet-wide through the shared module cache); mbb keeps the
	// native fallback so the slot budget carries both kinds of cost.
	for s := 0; s < fleet.NumShards(); s++ {
		sh := fleet.Shard(s)
		if _, err := sh.InstallPooledScheduler(iotSlice, "rr", wabi.Policy{}, sh.NumCells()); err != nil {
			return nil, err
		}
		sh.EnableTracing(tracer)
	}

	// --- RIC side: sharded fan-in, KPM store off, batching on ------------
	r, err := New(Config{
		ReportPeriodMs: cfg.ReportPeriodMs,
		Shards:         cfg.RICShards,
		KPMHistory:     NoKPMHistory,
		Tracer:         tracer,
		Overload:       cfg.Overload,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		r.Register(cfg.Obs, obs.L("plane", trace.PlaneRIC))
	}
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		return nil, err
	}

	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		return nil, err
	}
	defer lis.Close()
	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- r.Serve(lis, stop) }()

	// --- associations: Sectors agents per cell ---------------------------
	nAssoc := cfg.Cells * cfg.Sectors
	agents := make([]*Agent, 0, nAssoc)
	conns := make([]*e2.Conn, 0, nAssoc)
	addr := lis.Addr().String()
	batch := BatchConfig{Window: cfg.BatchWindow, FlushInterval: cfg.FlushInterval}
	for c := 0; c < cfg.Cells; c++ {
		for s := 0; s < cfg.Sectors; s++ {
			var agent *Agent
			var conn *e2.Conn
			// With the overload guard on, the fleet bring-up itself runs
			// through the admission gate: a TypeBusy refusal is honored by
			// sleeping out the retry-after hint, exactly as a supervised
			// agent session would, so the 1024-association dial burst enters
			// as a ramp instead of failing the run.
			for attempt := 0; ; attempt++ {
				raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
				if err != nil {
					return nil, fmt.Errorf("ric: citysim: association %d: %w", len(agents), err)
				}
				conn = e2.NewConn(raw, e2.BinaryCodec{})
				agent, err = NewAgent(conn, fleet.Cell(c), AgentConfig{
					Cell:   uint32(c*cfg.Sectors + s),
					Tracer: tracer,
					Batch:  batch,
				})
				if err != nil {
					conn.Close()
					return nil, err
				}
				if _, err = agent.Start(); err == nil {
					break
				}
				conn.Close()
				var busy *e2.BusyError
				if errors.As(err, &busy) && attempt < 60 {
					time.Sleep(busy.RetryAfter)
					continue
				}
				return nil, fmt.Errorf("ric: citysim: association %d: %w", len(agents), err)
			}
			agents = append(agents, agent)
			conns = append(conns, conn)
		}
	}
	defer func() {
		close(stop)
		for _, conn := range conns {
			conn.Close()
		}
		lis.Close()
		<-serveDone
	}()

	// Wait for the subscription handshake to land on every association
	// before measuring.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if live := r.Stats().LiveAssociations; live >= int64(nAssoc) {
			subscribed := 0
			for _, a := range agents {
				if a.Period() > 0 {
					subscribed++
				}
			}
			if subscribed == nAssoc {
				break
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("ric: citysim: only %d/%d associations subscribed in time",
				r.Stats().LiveAssociations, nAssoc)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// --- the measured slot loop ------------------------------------------
	start := time.Now()
	for slot := uint64(0); slot < uint64(cfg.Slots); slot++ {
		fleet.StepAll()
		for _, a := range agents {
			_ = a.Tick(slot) // a dead association shows up in live counts
		}
		time.Sleep(cfg.Pacing)
	}
	wall := time.Since(start)

	// Flush partial batch windows, then give in-flight controls a moment.
	for _, a := range agents {
		_ = a.Flush()
	}
	time.Sleep(200 * time.Millisecond)

	// --- results ----------------------------------------------------------
	st := r.Stats()
	res := &CitySimResult{
		Cells:        cfg.Cells,
		UEsPerCell:   cfg.UEsPerCell,
		ModeledUEs:   cfg.Cells * cfg.UEsPerCell,
		Sectors:      cfg.Sectors,
		Associations: st.LiveAssociations,
		RICShards:    cfg.RICShards,
		FleetShards:  fleet.NumShards(),
		BatchWindow:  cfg.BatchWindow,
		Slots:        cfg.Slots,

		WallMs:          float64(wall.Milliseconds()),
		SlotsPerSec:     float64(cfg.Slots) / wall.Seconds(),
		CellSlotsPerSec: float64(cfg.Slots) * float64(cfg.Cells) / wall.Seconds(),

		Indications:       st.Indications,
		IndicationsPerSec: float64(st.Indications) / wall.Seconds(),
		BatchFrames:       st.BatchFrames,
		Controls:          st.Controls,
		Refused:           st.RefusedAssociations,
	}
	if st.BatchFrames > 0 {
		res.IndicationsPerBatch = float64(st.Indications) / float64(st.BatchFrames)
	}
	shards := r.ShardStats()
	res.ShardSpreadMin = ^uint64(0)
	for _, sh := range shards {
		if sh.Associations < res.ShardSpreadMin {
			res.ShardSpreadMin = sh.Associations
		}
		if sh.Associations > res.ShardSpreadMax {
			res.ShardSpreadMax = sh.Associations
		}
	}
	for c := 0; c < cfg.Cells; c++ {
		fs := fleet.Cell(c).Fleet().Stats()
		res.FleetDeliveredBits += fs.DeliveredBits
		res.FleetDroppedBits += fs.DroppedBits
	}
	for _, ws := range fleet.WatchdogStats() {
		if ws.P99us > res.StripeP99Us {
			res.StripeP99Us = ws.P99us
		}
		res.StripeOverruns += ws.Overruns
	}
	if ov, ok := r.OverloadStats(); ok {
		res.Overload = &ov
	}
	spans := tracer.Snapshot()
	res.Hops = trace.HopStats(spans)
	res.P99ControlLoopUs, res.P99RICLoopUs, res.CompleteLoops = controlLoopP99(spans)
	if cfg.Obs != nil {
		res.Obs = cfg.Obs.Snapshot()
	}

	if res.Associations < int64(nAssoc) {
		return res, fmt.Errorf("ric: citysim: %d/%d associations alive at the end", res.Associations, nAssoc)
	}
	if res.Indications == 0 || res.Controls == 0 {
		return res, fmt.Errorf("ric: citysim: control loop never closed (ind=%d ctrl=%d)",
			res.Indications, res.Controls)
	}
	if cfg.BatchWindow > 1 && res.BatchFrames == 0 {
		return res, fmt.Errorf("ric: citysim: batching negotiated but no batch frame arrived")
	}
	return res, nil
}

// controlLoopP99 computes the p99 wall time of complete control loops: for
// every trace that retained both its first gNB-side indication.encode span
// and a closing slot.effect span, the full loop latency is last span end
// minus first span start, and the RIC-side loop latency is the same end
// minus the first ric.decode start (excluding agent-side batching dwell).
// Incomplete traces (ring-evicted heads, still-open loops) are excluded
// rather than skewing the tail.
func controlLoopP99(spans []*trace.Span) (fullP99us, ricP99us float64, complete int) {
	type window struct {
		startNs, endNs int64
		decodeNs       int64
		hasEncode      bool
		hasDecode      bool
		hasEffect      bool
	}
	byTrace := make(map[uint64]*window)
	for _, sp := range spans {
		w := byTrace[sp.TraceID]
		if w == nil {
			w = &window{startNs: sp.StartNs, endNs: sp.StartNs + sp.DurNs}
			byTrace[sp.TraceID] = w
		}
		if sp.StartNs < w.startNs {
			w.startNs = sp.StartNs
		}
		if end := sp.StartNs + sp.DurNs; end > w.endNs {
			w.endNs = end
		}
		switch sp.Name {
		case trace.SpanIndicationEncode:
			w.hasEncode = true
		case trace.SpanRICDecode:
			if !w.hasDecode || sp.StartNs < w.decodeNs {
				w.decodeNs = sp.StartNs
			}
			w.hasDecode = true
		case trace.SpanSlotEffect:
			w.hasEffect = true
		}
	}
	var full, ricSide []float64
	for _, w := range byTrace {
		if !w.hasEncode || !w.hasEffect {
			continue
		}
		full = append(full, float64(w.endNs-w.startNs)/1e3)
		if w.hasDecode {
			ricSide = append(ricSide, float64(w.endNs-w.decodeNs)/1e3)
		}
	}
	if len(full) == 0 {
		return 0, 0, 0
	}
	p99 := func(v []float64) float64 {
		sort.Float64s(v)
		return v[int(0.99*float64(len(v)-1))]
	}
	fullP99us = p99(full)
	if len(ricSide) > 0 {
		ricP99us = p99(ricSide)
	}
	return fullP99us, ricP99us, len(full)
}

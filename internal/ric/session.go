package ric

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/e2"
	"waran/internal/metrics"
	"waran/internal/obs"
)

// Backoff is an exponential-backoff-with-jitter schedule for reconnect
// attempts. The zero value gets sensible defaults (50 ms initial, 5 s cap,
// factor 2, 20 % jitter).
type Backoff struct {
	// Initial is the delay before the first retry (default 50 ms).
	Initial time.Duration
	// Max caps the delay (default 5 s).
	Max time.Duration
	// Factor multiplies the delay per consecutive failure (default 2).
	Factor float64
	// Jitter spreads each delay by ±Jitter fraction (default 0.2; set
	// negative to disable) so a fleet of agents does not thundering-herd
	// a restarted RIC.
	Jitter float64
	// FullJitter, when true, draws each delay uniformly from
	// [0, ceiling) (the AWS full-jitter scheme) instead of ±Jitter around
	// the exponential ceiling. ±20% still concentrates a synchronized
	// 1024-agent reconnect storm into a 40%-wide window per round;
	// full jitter spreads every round across the whole ceiling, which is
	// what turns a storm into a ramp.
	FullJitter bool
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0
	}
	return b
}

// Delay returns the wait before retry number attempt (0-based), jittered
// from rng (nil disables jitter).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// FullJitterDelay returns the wait before retry number attempt (0-based)
// drawn uniformly from [0, ceiling), where ceiling is the un-jittered
// exponential delay. With rng nil it returns the ceiling itself.
func (b Backoff) FullJitterDelay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng == nil {
		return time.Duration(d)
	}
	return time.Duration(rng.Float64() * d)
}

// delay dispatches to the configured jitter scheme.
func (b Backoff) delay(attempt int, rng *rand.Rand) time.Duration {
	if b.FullJitter {
		return b.FullJitterDelay(attempt, rng)
	}
	return b.Delay(attempt, rng)
}

// sessionSeq desynchronizes zero-seeded sessions. Seed==0 used to collapse
// onto schedule 1, so a fleet of default-configured agents drew *identical*
// jitter and retried in lock-step — the exact thundering herd jitter exists
// to prevent. Each zero-seeded session now derives a unique seed instead.
var sessionSeq atomic.Int64 // metric-exempt: seed derivation, not telemetry

func deriveSeed(seed int64) int64 {
	if seed != 0 {
		return seed
	}
	seq := uint64(sessionSeq.Add(1))
	return int64(uint64(time.Now().UnixNano()) ^ (seq * 0x9E3779B97F4A7C15))
}

// AssocMetrics aggregates association-resilience counters. All methods and
// fields are safe for concurrent use; one instance may be shared by a
// RIC-side Session and the RIC itself (each side increments the events it
// observes).
type AssocMetrics struct {
	// Reconnects counts associations established beyond the first.
	Reconnects metrics.Counter
	// MissedHeartbeats counts heartbeat intervals with no inbound frame.
	MissedHeartbeats metrics.Counter
	// DeadAssociations counts liveness-declared association deaths.
	DeadAssociations metrics.Counter
	// DroppedIndications counts indications not delivered because the
	// association was down or the send failed mid-flight.
	DroppedIndications metrics.Counter
	// BusyRefusals counts connect attempts the RIC refused with a busy
	// frame (admission control or brownout-critical subscription refusal).
	BusyRefusals metrics.Counter
	// BusyBackpressure counts mid-association busy frames received.
	BusyBackpressure metrics.Counter
	// ShedPaused counts due-slot indications shed at the source while a
	// busy-frame backpressure pause was in effect.
	ShedPaused metrics.Counter

	degradedNs atomic.Int64
}

// AddDegraded accumulates time spent without an association.
func (m *AssocMetrics) AddDegraded(d time.Duration) { m.degradedNs.Add(int64(d)) }

// Degraded reports total time spent without an association.
func (m *AssocMetrics) Degraded() time.Duration {
	return time.Duration(m.degradedNs.Load())
}

// AssocStats is the flat snapshot of AssocMetrics.
type AssocStats struct {
	Reconnects         uint64  `json:"reconnects"`
	MissedHeartbeats   uint64  `json:"missed_heartbeats"`
	DeadAssociations   uint64  `json:"dead_associations"`
	DroppedIndications uint64  `json:"dropped_indications"`
	BusyRefusals       uint64  `json:"busy_refusals"`
	BusyBackpressure   uint64  `json:"busy_backpressure"`
	ShedPaused         uint64  `json:"shed_paused"`
	DegradedMs         float64 `json:"degraded_ms"`
}

// Stats captures the counters.
func (m *AssocMetrics) Stats() AssocStats {
	return AssocStats{
		Reconnects:         m.Reconnects.Value(),
		MissedHeartbeats:   m.MissedHeartbeats.Value(),
		DeadAssociations:   m.DeadAssociations.Value(),
		DroppedIndications: m.DroppedIndications.Value(),
		BusyRefusals:       m.BusyRefusals.Value(),
		BusyBackpressure:   m.BusyBackpressure.Value(),
		ShedPaused:         m.ShedPaused.Value(),
		DegradedMs:         float64(m.Degraded().Nanoseconds()) / 1e6,
	}
}

// Register exposes the association-resilience counters on reg under
// waran_e2_assoc_*.
func (m *AssocMetrics) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_e2_assoc", "E2 association resilience counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			s := m.Stats()
			return []obs.Sample{
				{Suffix: "_reconnects_total", Value: float64(s.Reconnects)},
				{Suffix: "_missed_heartbeats_total", Value: float64(s.MissedHeartbeats)},
				{Suffix: "_dead_associations_total", Value: float64(s.DeadAssociations)},
				{Suffix: "_dropped_indications_total", Value: float64(s.DroppedIndications)},
				{Suffix: "_busy_refusals_total", Value: float64(s.BusyRefusals)},
				{Suffix: "_busy_backpressure_total", Value: float64(s.BusyBackpressure)},
				{Suffix: "_shed_paused_total", Value: float64(s.ShedPaused)},
				{Suffix: "_degraded_ms", Value: s.DegradedMs},
			}
		},
		JSON: func() any { return m.Stats() },
	}, labels...)
}

// sleepOrStop waits d unless stop closes first; it reports whether the
// caller should continue.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// SessionConfig is the validated construction surface of a Session.
type SessionConfig struct {
	RIC *RIC
	// Connect obtains the next association — typically a Listener's Accept
	// or an e2.Dial closure. Run returns when stop is closed; a blocked
	// Connect must be unblocked externally (close the listener).
	Connect func() (*e2.Conn, error)
	Backoff Backoff
	// Metrics, when set, receives the reconnect counter. Share it with
	// Config.Assoc to aggregate both sides' observations in one place.
	Metrics *AssocMetrics
	// Seed selects the jitter schedule (0 derives a unique per-session seed).
	Seed int64
	// OnAssociation, when set, observes each established association and
	// may return a teardown hook run after it ends (either may be nil).
	OnAssociation func(conn *e2.Conn) func()
	// OnEnd, when set, observes each association's terminal error.
	OnEnd func(err error)
}

// Validate checks the configuration.
func (c SessionConfig) Validate() error {
	if c.RIC == nil {
		return errors.New("ric: session needs a RIC")
	}
	if c.Connect == nil {
		return errors.New("ric: session needs a Connect function")
	}
	return nil
}

// Session supervises the RIC side of an association: it obtains connections
// from Connect (an accept or a dial), serves each until it dies, and goes
// back for the next one with exponential backoff on Connect failures. The
// RIC's xApp state persists across associations, so a reconnecting gNB is
// re-subscribed and controlled by the same policies without operator
// action.
type Session struct {
	cfg SessionConfig
}

// NewSession creates a session supervisor from a validated configuration.
func NewSession(cfg SessionConfig) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg}, nil
}

// Run supervises associations until stop closes.
func (s *Session) Run(stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(deriveSeed(s.cfg.Seed)))
	attempt := 0
	associations := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := s.cfg.Connect()
		if err != nil {
			if !sleepOrStop(s.cfg.Backoff.delay(attempt, rng), stop) {
				return
			}
			attempt++
			continue
		}
		attempt = 0
		associations++
		if associations > 1 && s.cfg.Metrics != nil {
			s.cfg.Metrics.Reconnects.Inc()
		}
		var teardown func()
		if s.cfg.OnAssociation != nil {
			teardown = s.cfg.OnAssociation(conn)
		}
		err = s.cfg.RIC.ServeConn(conn, stop)
		conn.Close()
		if teardown != nil {
			teardown()
		}
		if s.cfg.OnEnd != nil {
			s.cfg.OnEnd(err)
		}
	}
}

// AgentSessionConfig is the validated construction surface of an
// AgentSession.
type AgentSessionConfig struct {
	// Dial obtains the next connection, e.g. an e2.Dial closure.
	Dial func() (*e2.Conn, error)
	RAN  RANControl
	// Agent configures each Agent the session runs (cell, liveness bound,
	// tracer, batching); capabilities are re-negotiated on every reconnect.
	Agent AgentConfig
	// Backoff schedules reconnect attempts.
	Backoff Backoff
	// Metrics, when set, receives reconnect/drop/degraded-time counters.
	Metrics *AssocMetrics
	// Seed selects the jitter schedule (0 derives a unique per-session seed).
	Seed int64
}

// Validate checks the configuration.
func (c AgentSessionConfig) Validate() error {
	if c.Dial == nil {
		return errors.New("ric: agent session needs a Dial function")
	}
	if c.RAN == nil {
		return errors.New("ric: agent session needs a RAN control surface")
	}
	return c.Agent.Validate()
}

// AgentSession supervises the gNB side of an association: it dials with
// exponential backoff, runs an Agent per association, and when the
// association dies it degrades gracefully — Tick keeps returning instantly
// (counting the indications that could not be sent) so the MAC slot loop
// continues on the gNB's native inter-slice configuration instead of
// stalling, the same escape hatch the slice-plugin quarantine uses.
type AgentSession struct {
	cfg AgentSessionConfig

	mu           sync.Mutex
	agent        *Agent   // live agent, nil while degraded
	conn         *e2.Conn // live conn, closed by Stop to unblock the agent
	lastPeriod   uint64   // retained across teardowns for drop accounting
	degradedAt   time.Time
	associations uint64
	// Totals accumulated from dead agents; Counters adds the live one.
	indications, controlsOK, controlsFail, resubscribes uint64

	stop chan struct{}
	done chan struct{}
}

// NewAgentSession creates an agent-side association supervisor from a
// validated configuration.
func NewAgentSession(cfg AgentSessionConfig) (*AgentSession, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AgentSession{cfg: cfg}, nil
}

// Start launches the supervisor. Call Stop to shut it down.
func (s *AgentSession) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run()
}

// Stop shuts the supervisor down, closing any live association, and waits
// for it to exit.
func (s *AgentSession) Stop() {
	close(s.stop)
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-s.done
}

func (s *AgentSession) run() {
	defer close(s.done)
	rng := rand.New(rand.NewSource(deriveSeed(s.cfg.Seed)))
	attempt := 0
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		conn, err := s.cfg.Dial()
		if err != nil {
			if !sleepOrStop(s.cfg.Backoff.delay(attempt, rng), s.stop) {
				return
			}
			attempt++
			continue
		}
		// Publish the conn before the blocking handshake so Stop can
		// close it; then re-check stop (Stop closes s.stop before it
		// reads s.conn, so one of the two paths always closes the conn).
		s.mu.Lock()
		s.conn = conn
		s.mu.Unlock()
		select {
		case <-s.stop:
			conn.Close()
			s.clearConn()
			return
		default:
		}

		// The config was validated at construction, so NewAgent cannot
		// fail here; guard anyway so a future invariant change degrades
		// into backoff instead of a panic.
		agent, err := NewAgent(conn, s.cfg.RAN, s.cfg.Agent)
		if err == nil {
			var recvErr <-chan error
			recvErr, err = agent.Start()
			if err == nil {
				// Association established and subscribed.
				attempt = 0
				s.mu.Lock()
				s.associations++
				reconnect := s.associations > 1
				s.agent = agent
				if !s.degradedAt.IsZero() {
					if s.cfg.Metrics != nil {
						s.cfg.Metrics.AddDegraded(time.Since(s.degradedAt))
					}
					s.degradedAt = time.Time{}
				}
				s.mu.Unlock()
				if reconnect && s.cfg.Metrics != nil {
					s.cfg.Metrics.Reconnects.Inc()
				}

				var termErr error
				stopping := false
				select {
				case termErr = <-recvErr:
				case <-s.stop:
					conn.Close()
					termErr = <-recvErr
					stopping = true
				}
				if errors.Is(termErr, e2.ErrAssociationDead) && s.cfg.Metrics != nil {
					s.cfg.Metrics.DeadAssociations.Inc()
				}
				s.teardown(agent, conn)
				if stopping {
					return
				}
				continue
			}
		}
		conn.Close()
		s.clearConn()
		wait := s.cfg.Backoff.delay(attempt, rng)
		var busy *e2.BusyError
		if errors.As(err, &busy) {
			// The RIC refused us with a retry-after hint: honor it, but
			// jittered — uniform in [hint/2, hint*1.5) — so a refused cohort
			// ramps back instead of re-arriving as one synchronized wave. The
			// hint replaces the backoff wait only when it is longer.
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.BusyRefusals.Inc()
			}
			hinted := busy.RetryAfter
			if hinted > 0 {
				hinted = hinted/2 + time.Duration(rng.Float64()*float64(hinted))
			}
			if hinted > wait {
				wait = hinted
			}
		}
		if !sleepOrStop(wait, s.stop) {
			return
		}
		attempt++
	}
}

func (s *AgentSession) clearConn() {
	s.mu.Lock()
	s.conn = nil
	s.mu.Unlock()
}

// teardown folds a finished agent's counters into the session totals and
// marks the session degraded.
func (s *AgentSession) teardown(agent *Agent, conn *e2.Conn) {
	_ = agent.Flush() // don't strand a partial batch window with the conn
	conn.Close()
	ind, ok, fail := agent.Counters()
	rs := agent.Resubscribes()
	if s.cfg.Metrics != nil {
		// Fold the dead agent's overload accounting into the shared ledger:
		// source-shed indications keep their own counter; a window remainder
		// lost with the conn is a drop like any other mid-flight drop.
		bf, ps, lf := agent.OverloadCounters()
		s.cfg.Metrics.BusyBackpressure.Add(bf)
		s.cfg.Metrics.ShedPaused.Add(ps)
		s.cfg.Metrics.DroppedIndications.Add(lf)
	}
	s.mu.Lock()
	s.indications += ind
	s.controlsOK += ok
	s.controlsFail += fail
	s.resubscribes += rs
	if p := agent.Period(); p > 0 {
		s.lastPeriod = p
	}
	s.agent = nil
	s.conn = nil
	s.degradedAt = time.Now()
	s.mu.Unlock()
}

// Tick is called by the owner after each MAC slot. While an association is
// live it forwards to the Agent; while degraded (or when the send fails
// mid-flight) it counts the indication as dropped and returns immediately —
// it never stalls or aborts the slot loop.
func (s *AgentSession) Tick(slot uint64) {
	s.mu.Lock()
	agent := s.agent
	period := s.lastPeriod
	s.mu.Unlock()
	if agent != nil {
		if err := agent.Tick(slot); err != nil && s.cfg.Metrics != nil {
			// The conn died mid-send; the supervisor reconnects shortly.
			s.cfg.Metrics.DroppedIndications.Inc()
		}
		return
	}
	if period > 0 && slot%period == 0 && s.cfg.Metrics != nil {
		s.cfg.Metrics.DroppedIndications.Inc()
	}
}

// Connected reports whether an association is currently live.
func (s *AgentSession) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agent != nil
}

// Associations reports how many associations were established in total.
func (s *AgentSession) Associations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.associations
}

// LiveCounters reports the current association's indication and
// control-success counts, with live=false (and zeros) while degraded. It
// lets callers prove delivery on the association that survived a fault
// storm, not just in aggregate.
func (s *AgentSession) LiveCounters() (indications, controlsOK uint64, live bool) {
	s.mu.Lock()
	agent := s.agent
	s.mu.Unlock()
	if agent == nil {
		return 0, 0, false
	}
	ind, ok, _ := agent.Counters()
	return ind, ok, true
}

// Counters aggregates indication and control outcomes across every
// association this session has run.
func (s *AgentSession) Counters() (indications, controlsOK, controlsFail, resubscribes uint64) {
	s.mu.Lock()
	agent := s.agent
	indications, controlsOK, controlsFail, resubscribes =
		s.indications, s.controlsOK, s.controlsFail, s.resubscribes
	s.mu.Unlock()
	if agent != nil {
		ai, ao, af := agent.Counters()
		indications += ai
		controlsOK += ao
		controlsFail += af
		resubscribes += agent.Resubscribes()
	}
	return indications, controlsOK, controlsFail, resubscribes
}

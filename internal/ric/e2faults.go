package ric

import (
	"fmt"
	"net"
	"sync"
	"time"

	"waran/internal/e2"
	"waran/internal/obs"
	"waran/internal/plugins"
	"waran/internal/wabi"
)

// E2FaultsConfig parameterizes the association-resilience experiment: a
// gNB and a RIC joined over loopback, with the agent's connections wrapped
// in a fault-injecting transport.
type E2FaultsConfig struct {
	// Slots is how many MAC slots to run (default 2000).
	Slots int
	// ReportPeriodMs is the indication cadence (default 10; 1 ms slots).
	ReportPeriodMs uint32
	// Heartbeat is the RIC's heartbeat interval (default 5 ms).
	Heartbeat time.Duration
	// LivenessTimeout is the agent-side silence bound (default
	// 4*Heartbeat).
	LivenessTimeout time.Duration
	// Drop is the per-write drop probability used by the default fault
	// schedule (default 0.05).
	Drop float64
	// ResetAfterWrites forces a reset on the Nth write in the default
	// fault schedule (default 25).
	ResetAfterWrites int
	// Faults assigns one FaultConfig per agent connection in dial order;
	// connections beyond the list are clean, so recovery is observable.
	// When empty, a default two-connection storm is used: the first
	// association goes half-open (blackhole — only heartbeat liveness can
	// catch it), the second drops frames at Drop and is forcibly reset
	// after ResetAfterWrites writes, and the third onward is clean.
	Faults []e2.FaultConfig
	// Seed selects the fault and jitter schedules (0 behaves as 1).
	Seed int64
	// Pacing is slept after every slot so heartbeat/backoff timers get
	// wall-clock room (default 200 us).
	Pacing time.Duration
	// Obs, when non-nil, receives the RIC's and the shared association
	// metrics' instruments, and the result embeds its snapshot.
	Obs *obs.Registry
}

func (c E2FaultsConfig) withDefaults() E2FaultsConfig {
	if c.Slots <= 0 {
		c.Slots = 2000
	}
	if c.ReportPeriodMs == 0 {
		c.ReportPeriodMs = 10
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Millisecond
	}
	if c.LivenessTimeout <= 0 {
		c.LivenessTimeout = 4 * c.Heartbeat
	}
	if c.Drop == 0 {
		c.Drop = 0.05
	}
	if c.ResetAfterWrites == 0 {
		c.ResetAfterWrites = 25
	}
	if len(c.Faults) == 0 {
		// The blackhole threshold is odd so it lands on a frame boundary
		// (every Send is two writes: header, payload) and the association
		// goes cleanly silent — the half-open case only liveness catches —
		// rather than desynchronizing the peer's framing.
		c.Faults = []e2.FaultConfig{
			{BlackholeAfterWrites: 41},
			{DropProb: c.Drop, ResetAfterWrites: c.ResetAfterWrites},
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Pacing <= 0 {
		c.Pacing = 200 * time.Microsecond
	}
	return c
}

// E2FaultsResult reports the experiment outcome.
type E2FaultsResult struct {
	Slots           int     `json:"slots"`
	DropProb        float64 `json:"drop_prob"`
	ResetAfter      int     `json:"reset_after_writes"`
	FaultyConns     int     `json:"faulty_conns"`
	FaultsInjected  uint64  `json:"faults_injected"`
	FaultDrops      uint64  `json:"fault_drops"`
	FaultResets     uint64  `json:"fault_resets"`
	FaultBlackholes uint64  `json:"fault_blackholes"`

	Associations uint64     `json:"associations"`
	Assoc        AssocStats `json:"assoc"`

	Indications  uint64 `json:"indications_sent"`
	ControlsOK   uint64 `json:"controls_applied"`
	ControlsFail uint64 `json:"controls_failed"`
	Resubscribes uint64 `json:"resubscribes"`
	// FinalAssocControlsOK is the number of controls applied on the
	// association that was live when the run ended — the proof that
	// control delivery resumed after the fault storm.
	FinalAssocControlsOK uint64 `json:"final_assoc_controls_ok"`

	// Obs is the metric-registry snapshot taken as the run ended, present
	// when the experiment was instrumented (E2FaultsConfig.Obs).
	Obs map[string]any `json:"obs,omitempty"`
}

// RunE2Faults runs the association-resilience experiment: a RIC with the
// SLA-assurance xApp supervises associations from a RANControl whose slot
// loop the caller drives via step; the agent side dials through FaultConn
// so drops and resets tear associations down mid-flight. The result shows
// the association re-established with backoff, the subscription renewed,
// and controls applied again on the surviving association, while step is
// called for every slot regardless (the gNB never stalls).
func RunE2Faults(cfg E2FaultsConfig, ran RANControl, step func(slot uint64)) (*E2FaultsResult, error) {
	cfg = cfg.withDefaults()

	shared := &AssocMetrics{}
	r, err := New(Config{
		ReportPeriodMs:    cfg.ReportPeriodMs,
		HeartbeatInterval: cfg.Heartbeat,
		Assoc:             shared,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		r.Register(cfg.Obs)
	}
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		return nil, err
	}

	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		return nil, err
	}
	defer lis.Close()

	stop := make(chan struct{})
	ricSess, err := NewSession(SessionConfig{
		RIC:     r,
		Connect: lis.Accept,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ricDone := make(chan struct{})
	go func() {
		defer close(ricDone)
		ricSess.Run(stop)
	}()

	// The agent's first len(Faults) connections each get their assigned
	// fault schedule; per-dial seeds keep each connection's schedule
	// deterministic yet distinct.
	var mu sync.Mutex
	var faultConns []*e2.FaultConn
	dials := 0
	addr := lis.Addr().String()
	dial := func() (*e2.Conn, error) {
		raw, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		dials++
		n := dials
		mu.Unlock()
		if n <= len(cfg.Faults) {
			fcfg := cfg.Faults[n-1]
			if fcfg.Seed == 0 {
				fcfg.Seed = cfg.Seed + int64(n)
			}
			fc := e2.NewFaultConn(raw, fcfg)
			mu.Lock()
			faultConns = append(faultConns, fc)
			mu.Unlock()
			return e2.NewConn(fc, e2.BinaryCodec{}), nil
		}
		return e2.NewConn(raw, e2.BinaryCodec{}), nil
	}

	sess, err := NewAgentSession(AgentSessionConfig{
		Dial:    dial,
		RAN:     ran,
		Agent:   AgentConfig{Cell: 1, LivenessTimeout: cfg.LivenessTimeout},
		Backoff: Backoff{Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond},
		Metrics: shared,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	sess.Start()

	// Drive the MAC slot loop. The gNB steps every slot no matter what the
	// association is doing — degradation must never stall it.
	slot := uint64(0)
	for ; slot < uint64(cfg.Slots); slot++ {
		step(slot)
		sess.Tick(slot)
		time.Sleep(cfg.Pacing)
	}

	// Keep stepping (bounded) until the storm is over — a clean
	// association (beyond the faulty list) is live and has delivered at
	// least one control — so the "recovered" claim in the result is
	// measured, not assumed.
	res := &E2FaultsResult{
		Slots:       cfg.Slots,
		DropProb:    cfg.Drop,
		ResetAfter:  cfg.ResetAfterWrites,
		FaultyConns: len(cfg.Faults),
	}
	extra := uint64(cfg.Slots) * 4
	for i := uint64(0); i < extra; i++ {
		_, controlsOK, live := sess.LiveCounters()
		if live && controlsOK > 0 && sess.Associations() > uint64(len(cfg.Faults)) {
			res.FinalAssocControlsOK = controlsOK
			break
		}
		step(slot)
		sess.Tick(slot)
		slot++
		time.Sleep(cfg.Pacing)
	}

	sess.Stop()
	close(stop)
	lis.Close() // unblock the RIC session's Accept
	<-ricDone

	res.Associations = sess.Associations()
	res.Assoc = shared.Stats()
	res.Indications, res.ControlsOK, res.ControlsFail, res.Resubscribes = sess.Counters()
	mu.Lock()
	for _, fc := range faultConns {
		st := fc.Stats()
		res.FaultsInjected += st.Total()
		res.FaultDrops += st.Drops
		res.FaultResets += st.Resets
		res.FaultBlackholes += st.Blackholes
	}
	mu.Unlock()
	if cfg.Obs != nil {
		res.Obs = cfg.Obs.Snapshot()
	}
	if res.Associations == 0 {
		return res, fmt.Errorf("ric: e2faults: no association was ever established")
	}
	return res, nil
}

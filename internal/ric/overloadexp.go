package ric

// The overload chaos experiment (waranbench -fig overload): kill and restart
// the RIC under a live agent fleet and sweep the offered load past dispatch
// capacity, measuring the three things DESIGN.md §17 promises:
//
//  1. mass recovery — after the restart the reconnect stampede is admitted
//     as a controlled ramp (time-to-99%-reassociation, and how concentrated
//     the retry waves are);
//  2. shed accounting — the ledger conserves exactly at quiescence
//     (offered == delivered + shed_overflow + shed_stale + shed_teardown +
//     refused_late) on both the killed and the restarted RIC;
//  3. slow-xApp isolation — with the guard on (dispatch deadline + breaker)
//     a stalling xApp is trapped and skipped, so the fan-in keeps moving;
//     with it off the stall serializes the whole RIC and backs up into the
//     agents' slot loops. Both arms run the same topology and report tick
//     p99 and applied controls/second side by side.

import (
	"fmt"
	"os"
	"sort"
	"time"

	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/metrics"
	"waran/internal/obs"
	"waran/internal/obs/flight"
	"waran/internal/plugins"
	"waran/internal/wabi"
)

// slowXAppWATTemplate is a deliberately slow but *successful* xApp: it spins
// for a configured number of iterations, then returns a valid empty control
// list. Bounded (unlike an infinite loop) so that without the overload guard
// it neither exhausts fuel nor trips the consecutive-fault quarantine — it
// just dwells, which is exactly the failure mode the per-xApp dispatch
// deadline and breaker exist to contain.
const slowXAppWATTemplate = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "on_indication") (result i32)
    (local $i i32)
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const %d)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    ;; empty control list: u16 count = 0
    (i32.store16 (i32.const 32768) (i32.const 0))
    (call $output_write (i32.const 32768) (i32.const 2))
    (i32.const 0))
)`

// OverloadExpConfig parameterizes the overload chaos experiment.
type OverloadExpConfig struct {
	// Agents is the reconnect-storm fleet size (default 1024 — the citysim
	// association count).
	Agents int
	// Shards is the RIC association shard count (default 16).
	Shards int
	// AdmitRate / AdmitBurst tune the per-shard admission token bucket the
	// restarted RIC ramps the stampede through (defaults 64/s and 8 — low
	// enough that a default fleet visibly queues behind the gate).
	AdmitRate  float64
	AdmitBurst int
	// RetryAfter is the hint floor on TypeBusy admission refusals (default
	// DefaultRetryAfter).
	RetryAfter time.Duration
	// ReportPeriodMs is the subscription cadence in slots (default 20).
	ReportPeriodMs uint32
	// Warmup is how long the fleet runs before the kill (default 500 ms).
	Warmup time.Duration
	// Outage is how long the RIC stays down (default 250 ms).
	Outage time.Duration
	// RampBound bounds the post-restart reassociation wait (default 30 s).
	RampBound time.Duration
	// Pacing is the simulated slot interval for the tick driver (default
	// 1 ms).
	Pacing time.Duration
	// Dwell is the slow-xApp measurement window per arm (default 3 s).
	Dwell time.Duration
	// DwellAgents is the dwell arms' fleet size (default 32; the dwell arms
	// measure xApp isolation, not admission, so they stay small enough that
	// the guard-off arm finishes in bounded wall time).
	DwellAgents int
	// StallIters is the slow xApp's spin length in loop iterations (default
	// 1e6 — far past any sane dispatch deadline at interpreter speed).
	StallIters int
	// XAppDeadline is the dwell arm's per-dispatch wall-clock bound (default
	// 1 ms, well under one StallIters spin).
	XAppDeadline time.Duration
	// Seed spreads the session jitter schedules (default 1; session i uses
	// Seed+i).
	Seed int64
	// Obs, when non-nil, receives the restarted RIC's instruments and the
	// result embeds its snapshot.
	Obs *obs.Registry
	// Flight arms the flight recorder across every arm: the storm's
	// admission refusals and the guarded dwell's breaker trip are journaled
	// and must reach a diagnostic bundle, or the run fails.
	Flight bool
	// FlightDir is where diagnostic bundles land (empty = temp dir).
	FlightDir string
}

func (c OverloadExpConfig) withDefaults() OverloadExpConfig {
	if c.Agents <= 0 {
		c.Agents = 1024
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.AdmitRate == 0 {
		c.AdmitRate = 64
	}
	if c.AdmitBurst <= 0 {
		c.AdmitBurst = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.ReportPeriodMs == 0 {
		c.ReportPeriodMs = 20
	}
	if c.Warmup <= 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.Outage <= 0 {
		c.Outage = 250 * time.Millisecond
	}
	if c.RampBound <= 0 {
		c.RampBound = 30 * time.Second
	}
	if c.Pacing <= 0 {
		c.Pacing = time.Millisecond
	}
	if c.Dwell <= 0 {
		c.Dwell = 3 * time.Second
	}
	if c.DwellAgents <= 0 {
		c.DwellAgents = 32
	}
	if c.StallIters <= 0 {
		c.StallIters = 1_000_000
	}
	if c.XAppDeadline <= 0 {
		c.XAppDeadline = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OverloadDwell is one arm of the slow-xApp isolation comparison.
type OverloadDwell struct {
	Guard bool `json:"guard"`
	// TickP99Ms is the p99 wall time of one full fleet tick (every agent's
	// Tick called once). With the guard off a stalling xApp eventually backs
	// the TCP stream up into these ticks; with it on they stay flat.
	TickP99Ms float64 `json:"tick_p99_ms"`
	TickMaxMs float64 `json:"tick_max_ms"`
	Ticks     int     `json:"ticks"`
	// ControlsPerSec is the rate of control actions applied at the RAN
	// during the window — the fan-in's useful throughput around the stall.
	ControlsPerSec float64 `json:"controls_per_sec"`
	// SlowInvocations / SlowSkipped / SlowBreaker describe what happened to
	// the stalling xApp itself.
	SlowInvocations uint64 `json:"slow_invocations"`
	SlowSkipped     uint64 `json:"slow_skipped"`
	SlowFaults      uint64 `json:"slow_faults"`
	SlowBreaker     string `json:"slow_breaker,omitempty"`
	SlowDisabled    bool   `json:"slow_disabled"`
}

// OverloadResult is the overload chaos experiment's report.
type OverloadResult struct {
	Agents int `json:"agents"`
	Shards int `json:"shards"`

	// --- reconnect storm ---------------------------------------------------
	// Reassoc99Ms / Reassoc100Ms are the post-restart times until 99% / 100%
	// of the fleet held a live association again (-1 if never inside
	// RampBound).
	Reassoc99Ms  float64 `json:"reassoc_99_ms"`
	Reassoc100Ms float64 `json:"reassoc_100_ms"`
	Reassociated int     `json:"reassociated"`
	// MaxWaveFraction is the largest fraction of the fleet whose reconnects
	// landed inside one WaveBucketMs-wide bucket — near 1.0 means the storm
	// re-arrived as a synchronized wave, small means it ramped.
	MaxWaveFraction float64 `json:"max_wave_fraction"`
	WaveBucketMs    float64 `json:"wave_bucket_ms"`
	BusyRefusals    uint64  `json:"busy_refusals"`
	Reconnects      uint64  `json:"reconnects"`
	DroppedInd      uint64  `json:"dropped_indications"`

	// --- shed ledgers ------------------------------------------------------
	// LedgerPreKill is the killed RIC's quiescent overload snapshot;
	// Ledger is the restarted RIC's. LedgerConserved reports that both
	// satisfy offered == delivered + sheds + refused_late exactly.
	LedgerPreKill   OverloadStats `json:"ledger_pre_kill"`
	Ledger          OverloadStats `json:"ledger"`
	LedgerConserved bool          `json:"ledger_conserved"`

	// --- slow-xApp isolation ----------------------------------------------
	GuardOn  OverloadDwell `json:"guard_on"`
	GuardOff OverloadDwell `json:"guard_off"`

	// Flight is the incident-journal digest when the experiment ran with
	// the flight recorder armed.
	Flight *flight.Summary `json:"flight,omitempty"`

	Obs map[string]any `json:"obs,omitempty"`
}

// ledgerConserved checks the exact shed-ledger invariant on a quiescent
// overload snapshot.
func ledgerConserved(s OverloadStats) bool {
	return s.Offered == s.Delivered+s.ShedOverflow+s.ShedStale+s.ShedTeardown+s.RefusedLate
}

// overloadRAN is the experiment's synthetic RAN control surface: every
// snapshot carries one under-SLA slice (so the SLA-assurance xApp emits a
// control per indication — a countable unit of useful RIC work) plus a UE
// vector bulky enough that transport buffers fill quickly once dispatch
// stalls.
type overloadRAN struct {
	applies metrics.Counter
}

func (o *overloadRAN) Snapshot(cell uint32) *e2.Indication {
	ues := make([]e2.UEMeasurement, 32)
	for i := range ues {
		ues[i] = e2.UEMeasurement{UEID: uint32(i + 1), SliceID: 1, MCS: 20, BufferBytes: 4096, TputBps: 1e6}
	}
	return &e2.Indication{
		Cell: cell,
		UEs:  ues,
		Slices: []e2.SliceMeasurement{
			{SliceID: 1, TargetBps: 10e6, ServedBps: 1e6},    // starved: boosted every report
			{SliceID: 2, TargetBps: 10e6, ServedBps: 10.5e6}, // healthy: inside the dead band
		},
	}
}

func (o *overloadRAN) Apply(c *e2.ControlRequest) error {
	o.applies.Inc()
	return nil
}

// RunOverload runs the overload chaos experiment: a reconnect-storm arm
// (kill + restart under admission control) followed by the two slow-xApp
// dwell arms. A non-nil error flags a hard invariant violation (warmup or
// reassociation failure, ledger imbalance); the partial result is still
// returned for inspection.
func RunOverload(cfg OverloadExpConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	res := &OverloadResult{
		Agents:       cfg.Agents,
		Shards:       cfg.Shards,
		Reassoc99Ms:  -1,
		Reassoc100Ms: -1,
		WaveBucketMs: 100,
	}

	// With the flight knob armed, one recorder journals every arm (the
	// restarted storm RIC and both dwell RICs share it) and anomaly
	// triggers capture bundles along the way; the run fails unless the
	// storm's admission refusals and the guarded dwell's breaker trip are
	// both covered by a bundle.
	var frec *flight.Recorder
	var fcap *flight.Capturer
	if cfg.Flight {
		frec = flight.NewRecorder(8192)
		frec.SetTriggers(flight.EvBreakerOpen, flight.EvBrownoutShift, flight.EvAdmissionRefused)
		dir := cfg.FlightDir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "waran-flight-"); err != nil {
				return res, err
			}
		}
		var err error
		fcap, err = flight.NewCapturer(frec, flight.CapturerConfig{
			Dir: dir, Debounce: 200 * time.Millisecond, GoroutineDump: -1,
			Registry: cfg.Obs,
		})
		if err != nil {
			return res, err
		}
		fstop := make(chan struct{})
		defer close(fstop)
		go fcap.Run(fstop)
	}

	if err := runOverloadStorm(cfg, res, frec); err != nil {
		return res, err
	}

	var err error
	if res.GuardOn, err = runOverloadDwell(cfg, true, frec); err != nil {
		return res, err
	}
	if res.GuardOff, err = runOverloadDwell(cfg, false, frec); err != nil {
		return res, err
	}
	if fcap != nil {
		if _, err := fcap.CaptureNow("overload-final"); err != nil {
			return res, err
		}
		sum, ok, serr := flight.Summarize(frec, fcap, flight.EvAdmissionRefused, flight.EvBreakerOpen)
		if serr != nil {
			return res, serr
		}
		res.Flight = sum
		if !ok {
			return res, fmt.Errorf("ric: overload: flight recorder produced no bundle covering %s and %s",
				flight.EvAdmissionRefused, flight.EvBreakerOpen)
		}
	}
	if cfg.Obs != nil {
		res.Obs = cfg.Obs.Snapshot()
	}
	return res, nil
}

// runOverloadStorm is the kill/restart arm: warm the fleet up against one
// overloaded-guarded RIC, kill it, restart on the same address, and measure
// how the stampede re-admits.
func runOverloadStorm(cfg OverloadExpConfig, res *OverloadResult, frec *flight.Recorder) error {
	ran := &overloadRAN{}
	ovCfg := &OverloadConfig{
		AdmitRate:  cfg.AdmitRate,
		AdmitBurst: cfg.AdmitBurst,
		RetryAfter: cfg.RetryAfter,
	}
	newRIC := func() (*RIC, error) {
		return New(Config{
			ReportPeriodMs: cfg.ReportPeriodMs,
			Shards:         cfg.Shards,
			KPMHistory:     NoKPMHistory,
			Overload:       ovCfg,
			Flight:         frec,
		})
	}

	r1, err := newRIC()
	if err != nil {
		return err
	}
	if _, err := r1.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		return err
	}
	lis1, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		return err
	}
	addr := lis1.Addr().String()
	stop1 := make(chan struct{})
	serve1 := make(chan error, 1)
	go func() { serve1 <- r1.Serve(lis1, stop1) }()

	// The shared metrics ledger every session folds into.
	am := &AssocMetrics{}
	sessions := make([]*AgentSession, cfg.Agents)
	for i := range sessions {
		s, err := NewAgentSession(AgentSessionConfig{
			Dial:  func() (*e2.Conn, error) { return e2.Dial(addr, e2.BinaryCodec{}) },
			RAN:   ran,
			Agent: AgentConfig{Cell: uint32(i)},
			// Full jitter is the point: each round of a synchronized retry
			// storm spreads uniformly over the whole backoff ceiling.
			Backoff: Backoff{Initial: 30 * time.Millisecond, Max: 2 * time.Second, FullJitter: true},
			Metrics: am,
			Seed:    cfg.Seed + int64(i),
		})
		if err != nil {
			return err
		}
		sessions[i] = s
		s.Start()
	}
	stopSessions := func() {
		for _, s := range sessions {
			s.Stop()
		}
	}

	// Tick driver: a simulated slot loop that keeps running through the kill
	// and the outage — degraded sessions count their shed slots instead of
	// stalling, exactly as a real gNB slot loop would.
	tickQuit := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		slot := uint64(0)
		for {
			select {
			case <-tickQuit:
				return
			default:
			}
			slot++
			for _, s := range sessions {
				s.Tick(slot)
			}
			time.Sleep(cfg.Pacing)
		}
	}()
	defer func() {
		close(tickQuit)
		<-tickDone
	}()

	// Warmup: every session associated, then a measured interval of load.
	deadline := time.Now().Add(cfg.RampBound)
	for {
		n := 0
		for _, s := range sessions {
			if s.Connected() {
				n++
			}
		}
		if n == cfg.Agents {
			break
		}
		if time.Now().After(deadline) {
			stopSessions()
			close(stop1)
			<-serve1
			return fmt.Errorf("ric: overload: only %d/%d sessions associated during warmup", n, cfg.Agents)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(cfg.Warmup)

	// Kill. Serve's supervisor closes every association's conn, so the RIC
	// quiesces and its shed ledger must balance (teardown drains count).
	assocBefore := make([]uint64, cfg.Agents)
	for i, s := range sessions {
		assocBefore[i] = s.Associations()
	}
	close(stop1)
	<-serve1
	res.LedgerPreKill, _ = r1.OverloadStats()

	time.Sleep(cfg.Outage)

	// Restart on the same address — the fleet's dial target never changes.
	r2, err := newRIC()
	if err != nil {
		stopSessions()
		return err
	}
	if cfg.Obs != nil {
		r2.Register(cfg.Obs)
		am.Register(cfg.Obs)
	}
	if _, err := r2.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		stopSessions()
		return err
	}
	var lis2 *e2.Listener
	for attempt := 0; ; attempt++ {
		lis2, err = e2.Listen(addr, e2.BinaryCodec{})
		if err == nil {
			break
		}
		if attempt > 200 {
			stopSessions()
			return fmt.Errorf("ric: overload: cannot rebind %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop2 := make(chan struct{})
	serve2 := make(chan error, 1)
	go func() { serve2 <- r2.Serve(lis2, stop2) }()
	restart := time.Now()

	// Watch the ramp: per-session first-reassociation times at 2 ms
	// resolution feed both the 99%/100% marks and the wave-alignment
	// histogram.
	reassocAt := make([]time.Duration, cfg.Agents)
	for i := range reassocAt {
		reassocAt[i] = -1
	}
	need99 := (cfg.Agents*99 + 99) / 100 // ceil(0.99 * Agents)
	count := 0
	rampEnd := restart.Add(cfg.RampBound)
	for count < cfg.Agents && time.Now().Before(rampEnd) {
		now := time.Since(restart)
		for i, s := range sessions {
			if reassocAt[i] < 0 && s.Associations() > assocBefore[i] {
				reassocAt[i] = now
				count++
			}
		}
		if res.Reassoc99Ms < 0 && count >= need99 {
			res.Reassoc99Ms = float64(now.Nanoseconds()) / 1e6
		}
		if count == cfg.Agents {
			res.Reassoc100Ms = float64(now.Nanoseconds()) / 1e6
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Reassociated = count

	// Wave alignment: bucket the reassociation times and report the biggest
	// bucket's share of the fleet.
	bucket := time.Duration(res.WaveBucketMs) * time.Millisecond
	waves := map[int64]int{}
	for _, d := range reassocAt {
		if d >= 0 {
			waves[int64(d/bucket)]++
		}
	}
	for _, n := range waves {
		if f := float64(n) / float64(cfg.Agents); f > res.MaxWaveFraction {
			res.MaxWaveFraction = f
		}
	}

	// Quiesce: stop the fleet first (each Stop flushes and folds counters),
	// then the RIC, then check both ledgers.
	stopSessions()
	close(stop2)
	<-serve2
	res.Ledger, _ = r2.OverloadStats()
	st := am.Stats()
	res.BusyRefusals = st.BusyRefusals
	res.Reconnects = st.Reconnects
	res.DroppedInd = st.DroppedIndications
	res.LedgerConserved = ledgerConserved(res.LedgerPreKill) && ledgerConserved(res.Ledger)

	if res.Reassociated < need99 {
		return fmt.Errorf("ric: overload: only %d/%d sessions reassociated within %v (need %d)",
			res.Reassociated, cfg.Agents, cfg.RampBound, need99)
	}
	if !res.LedgerConserved {
		return fmt.Errorf("ric: overload: shed ledger violated: pre-kill %+v, post %+v",
			res.LedgerPreKill, res.Ledger)
	}
	return nil
}

// runOverloadDwell runs one slow-xApp isolation arm: DwellAgents agents
// report every slot into a RIC hosting a stalling xApp ahead of the SLA
// xApp, with the overload guard on or off.
func runOverloadDwell(cfg OverloadExpConfig, guarded bool, frec *flight.Recorder) (OverloadDwell, error) {
	dw := OverloadDwell{Guard: guarded}
	ran := &overloadRAN{}

	var ov *OverloadConfig
	if guarded {
		ov = &OverloadConfig{
			// The dwell arm isolates the xApp guard: admission and source
			// backpressure are the storm arm's subject, so they are disabled
			// here to keep the two arms' offered load identical.
			AdmitRate:    -1,
			BusyPause:    -1,
			XAppDeadline: cfg.XAppDeadline,
			// MinSamples below the consecutive-fault quarantine so the
			// breaker opens (recoverable) before the blunt disable fires, and
			// a probe backoff past the window so measurements see a cleanly
			// open breaker rather than probe churn.
			Breaker: guard.BreakerConfig{MinSamples: 2, Backoff: cfg.Dwell + time.Second},
		}
	}
	r, err := New(Config{
		ReportPeriodMs: 1, // report every slot: offered load well past a stalled dispatcher
		Shards:         4,
		KPMHistory:     NoKPMHistory,
		Overload:       ov,
		Flight:         frec,
	})
	if err != nil {
		return dw, err
	}
	slowSrc := fmt.Sprintf(slowXAppWATTemplate, cfg.StallIters)
	// Installed first, the stall sits in front of the SLA xApp in dispatch
	// order — without isolation every indication pays it before any useful
	// work happens.
	slow, err := r.AddXAppWAT("slow", slowSrc, wabi.Policy{Fuel: 1 << 30})
	if err != nil {
		return dw, err
	}
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		return dw, err
	}

	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		return dw, err
	}
	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- r.Serve(lis, stop) }()

	agents := make([]*Agent, 0, cfg.DwellAgents)
	conns := make([]*e2.Conn, 0, cfg.DwellAgents)
	defer func() {
		close(stop)
		for _, c := range conns {
			c.Close()
		}
		<-serveDone
	}()
	for i := 0; i < cfg.DwellAgents; i++ {
		conn, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
		if err != nil {
			return dw, err
		}
		conns = append(conns, conn)
		a, err := NewAgent(conn, ran, AgentConfig{Cell: uint32(i)})
		if err != nil {
			return dw, err
		}
		if _, err := a.Start(); err != nil {
			return dw, err
		}
		agents = append(agents, a)
	}

	// The measured loop: each tick sends one indication per agent. With the
	// guard off the stall eventually fills the transport buffers and the
	// send — hence the whole fleet tick — blocks behind the slow xApp.
	var ticks []float64
	start := time.Now()
	end := start.Add(cfg.Dwell)
	for slot := uint64(1); time.Now().Before(end); slot++ {
		t0 := time.Now()
		for _, a := range agents {
			_ = a.Tick(slot)
		}
		d := float64(time.Since(t0).Nanoseconds()) / 1e6
		ticks = append(ticks, d)
		if d > dw.TickMaxMs {
			dw.TickMaxMs = d
		}
		time.Sleep(cfg.Pacing)
	}
	wall := time.Since(start)

	dw.Ticks = len(ticks)
	if len(ticks) > 0 {
		sort.Float64s(ticks)
		dw.TickP99Ms = ticks[int(0.99*float64(len(ticks)-1))]
	}
	dw.ControlsPerSec = float64(ran.applies.Value()) / wall.Seconds()
	ss := slow.Stats()
	dw.SlowInvocations = ss.Invocations
	dw.SlowSkipped = ss.Skipped
	dw.SlowFaults = ss.Faults
	dw.SlowBreaker = ss.BreakerState
	dw.SlowDisabled = ss.Disabled
	return dw, nil
}

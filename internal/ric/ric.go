package ric

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/metrics"
	"waran/internal/obs"
	"waran/internal/obs/flight"
	"waran/internal/obs/trace"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// RIC is the near-RT RIC host: it owns the xApp registry, dispatches
// indications to every enabled xApp, aggregates their control actions, and
// drives E2-lite associations with a fleet of gNBs. Construct it with New
// (or MustNew) from a Config; nothing is poked post-construction.
//
// Associations hash onto shards (Config.Shards): each shard carries its own
// goroutine budget, counters, and obs instruments, and the xApp registry is
// a copy-on-write snapshot, so indication fan-in from concurrent
// associations never serializes on a global lock.
type RIC struct {
	cfg Config

	// instMu guards xApp install/remove; readers go through the
	// copy-on-write snapshots below and never take it.
	instMu sync.Mutex
	xapps  atomic.Pointer[[]*XApp]
	byName atomic.Pointer[map[string]*XApp]

	// KPM stores the indication history for analytics and tests (nil when
	// Config.KPMHistory is NoKPMHistory).
	KPM *KPMStore
	// Modules content-addresses uploaded xApp bytecode: installing the
	// same bytes under several names (or re-installing after a remove)
	// compiles once.
	Modules *wabi.ModuleCache

	// lastTraced remembers the most recent traced indication's xapp.invoke
	// context, so out-of-band controls (operator-initiated uploads) can
	// join the decision tree that provoked them.
	lastTraced atomic.Pointer[trace.Context]

	shards    []*shard
	nextShard atomic.Uint64 // metric-exempt: round-robin tiebreak, not telemetry

	// ov is the overload-control state (nil when Config.Overload is nil):
	// admission gates, shed ledger, brownout level. See overload.go.
	ov *overload
}

// shard is one association domain: associations hash here and every
// hot-path counter lives here, padded apart from its siblings so fan-in
// from one shard never bounces a cache line another shard writes.
type shard struct {
	id  int
	sem chan struct{} // association goroutine budget

	indications metrics.Counter
	controls    metrics.Counter
	batchFrames metrics.Counter
	assocTotal  metrics.Counter
	refused     metrics.Counter
	live        atomic.Int64 // metric-exempt: gauge (needs decrement), snapshot via Stats
	_           [64]byte     // keep the next shard's counters off this cache line
}

func newShard(id, budget int) *shard {
	return &shard{id: id, sem: make(chan struct{}, budget)}
}

// ShardStats is the flat snapshot of one association shard.
type ShardStats struct {
	Shard            int    `json:"shard"`
	LiveAssociations int64  `json:"live_associations"`
	Associations     uint64 `json:"associations"`
	Refused          uint64 `json:"refused"`
	Indications      uint64 `json:"indications"`
	BatchFrames      uint64 `json:"batch_frames"`
	Controls         uint64 `json:"controls"`
}

func (s *shard) stats() ShardStats {
	return ShardStats{
		Shard:            s.id,
		LiveAssociations: s.live.Load(),
		Associations:     s.assocTotal.Value(),
		Refused:          s.refused.Value(),
		Indications:      s.indications.Value(),
		BatchFrames:      s.batchFrames.Value(),
		Controls:         s.controls.Value(),
	}
}

// storeXApps publishes a new registry snapshot (callers hold instMu, or are
// the constructor).
func (r *RIC) storeXApps(list []*XApp, byName map[string]*XApp) {
	r.xapps.Store(&list)
	r.byName.Store(&byName)
}

func (r *RIC) xappSnapshot() []*XApp { return *r.xapps.Load() }

// Config returns the configuration the RIC was built from (defaults
// applied).
func (r *RIC) Config() Config { return r.cfg }

// Tracer returns the tracer the RIC records spans on (nil when untraced).
func (r *RIC) Tracer() *trace.Tracer { return r.cfg.Tracer }

// AddXAppWAT compiles WAT source and installs it as an xApp. The plugin
// gets the RIC host functions under module "ric" plus the standard wabi
// ABI; a zero policy receives a 16 MiB cap and 10M-instruction fuel budget.
func (r *RIC) AddXAppWAT(name, src string, policy wabi.Policy) (*XApp, error) {
	mod, err := wabi.CompileWAT(src)
	if err != nil {
		return nil, fmt.Errorf("ric: compile xApp %q: %w", name, err)
	}
	return r.AddXApp(name, mod, policy)
}

// AddXAppBytecode installs Wasm bytecode as an xApp — the operator upload
// path. The bytecode is resolved through the RIC's content-addressed
// module cache, so identical bytes decode/validate/flatten at most once.
func (r *RIC) AddXAppBytecode(name string, bin []byte, policy wabi.Policy) (*XApp, error) {
	mod, err := r.Modules.Load(bin)
	if err != nil {
		return nil, fmt.Errorf("ric: rejected xApp %q bytecode: %w", name, err)
	}
	return r.AddXApp(name, mod, policy)
}

// AddXApp installs a compiled module as an xApp.
func (r *RIC) AddXApp(name string, mod *wabi.Module, policy wabi.Policy) (*XApp, error) {
	r.instMu.Lock()
	defer r.instMu.Unlock()
	byName := *r.byName.Load()
	if _, dup := byName[name]; dup {
		return nil, fmt.Errorf("ric: xApp %q already installed", name)
	}
	if policy.MaxMemoryPages == 0 {
		policy.MaxMemoryPages = 256
	}
	if policy.Fuel == 0 {
		policy.Fuel = 10_000_000
	}
	x := &XApp{Name: name}
	if ov := r.cfg.Overload; ov != nil {
		// Slow-xApp isolation: bound every dispatch by a wall-clock deadline
		// (a stalled guest traps with wabi.FailDeadline) and meter outcomes
		// through a guard breaker so a persistently bad xApp is skipped.
		if policy.CallTimeout == 0 && ov.XAppDeadline > 0 {
			policy.CallTimeout = ov.XAppDeadline
		}
		x.breaker = guard.NewBreaker(ov.Breaker)
		if rec := r.cfg.Flight; rec.Enabled() {
			// Journal every breaker transition so a diagnostic bundle shows
			// which xApp tripped, and when, relative to the brownout shifts
			// and sheds around it.
			xname := name
			x.breaker.SetTransitionHook(func(from, to guard.State) {
				cls := flight.EvBreakerClose
				switch to {
				case guard.Open:
					cls = flight.EvBreakerOpen
				case guard.HalfOpen:
					cls = flight.EvBreakerHalfOpen
				}
				rec.Record(flight.Event{
					Class: cls, Plane: flight.PlaneRIC,
					Detail: xname + ": " + from.String() + "->" + to.String(),
				})
			})
		}
	}
	env := wabi.Env{
		HostFuncs: wasm.Imports{"ric": r.hostFuncs(x)},
	}
	if r.cfg.OnLog != nil {
		env.OnLog = func(msg string) { r.cfg.OnLog(name, msg) }
	}
	if r.cfg.Profile != nil {
		env.Profile = r.cfg.Profile
		env.ProfileTag = name
	}
	plugin, err := wabi.NewPlugin(mod, policy, env)
	if err != nil {
		return nil, fmt.Errorf("ric: instantiate xApp %q: %w", name, err)
	}
	if !plugin.HasEntry(XAppEntry) {
		return nil, fmt.Errorf("ric: xApp %q does not export %q with signature () -> i32", name, XAppEntry)
	}
	x.plugin = plugin
	list := append(append([]*XApp(nil), r.xappSnapshot()...), x)
	next := make(map[string]*XApp, len(byName)+1)
	for k, v := range byName {
		next[k] = v
	}
	next[name] = x
	r.storeXApps(list, next)
	return x, nil
}

// XApp looks up an installed xApp by name.
func (r *RIC) XApp(name string) (*XApp, bool) {
	x, ok := (*r.byName.Load())[name]
	return x, ok
}

// XApps returns installed xApps in installation order.
func (r *RIC) XApps() []*XApp {
	return append([]*XApp(nil), r.xappSnapshot()...)
}

// RemoveXApp uninstalls an xApp — like slice plugins, xApps come and go
// without restarting the RIC.
func (r *RIC) RemoveXApp(name string) error {
	r.instMu.Lock()
	defer r.instMu.Unlock()
	byName := *r.byName.Load()
	x, ok := byName[name]
	if !ok {
		return fmt.Errorf("ric: no xApp %q", name)
	}
	var list []*XApp
	for _, v := range r.xappSnapshot() {
		if v != x {
			list = append(list, v)
		}
	}
	next := make(map[string]*XApp, len(byName))
	for k, v := range byName {
		if k != name {
			next[k] = v
		}
	}
	r.storeXApps(list, next)
	return nil
}

// HandleIndication dispatches one indication to every enabled xApp and
// returns the aggregated control actions. Individual xApp faults are
// contained (counted, possibly quarantining the xApp) and do not fail the
// dispatch.
func (r *RIC) HandleIndication(ind *e2.Indication) []e2.ControlRequest {
	out, _ := r.HandleIndicationTraced(ind, trace.Context{})
	return out
}

// HandleIndicationTraced is HandleIndication carrying the indication's trace
// context: with tracing on, the whole xApp dispatch is recorded as one
// xapp.invoke span and the returned context names that span, so the caller
// parents the resulting control sends to it. With a zero ctx (or no tracer)
// it behaves exactly like HandleIndication and echoes ctx back.
//
// Direct calls account on shard 0; associations served by ServeConn account
// on their own shard.
func (r *RIC) HandleIndicationTraced(ind *e2.Indication, ctx trace.Context) ([]e2.ControlRequest, trace.Context) {
	return r.handleIndicationOn(r.shards[0], ind, ctx)
}

func (r *RIC) handleIndicationOn(sh *shard, ind *e2.Indication, ctx trace.Context) ([]e2.ControlRequest, trace.Context) {
	tracing := r.cfg.Tracer.Enabled() && ctx.Valid()
	var start time.Time
	if tracing {
		start = time.Now()
		c := trace.Context{TraceID: ctx.TraceID, SpanID: trace.NewSpanID()}
		r.lastTraced.Store(&c)
		defer func() {
			r.cfg.Tracer.Record(&trace.Span{
				TraceID: c.TraceID, SpanID: c.SpanID, Parent: ctx.SpanID,
				Name: trace.SpanXAppInvoke, Plane: trace.PlaneRIC,
				Slot: ind.Slot, Cell: ind.Cell,
				StartNs: start.UnixNano(), DurNs: int64(time.Since(start)),
			})
		}()
		ctx = c
	}
	if r.KPM != nil {
		r.KPM.Record(time.Now(), ind)
	}
	payload := e2.AppendIndicationBody(nil, ind)
	var out []e2.ControlRequest
	for _, x := range r.xappSnapshot() {
		list, err := x.invoke(r, payload)
		if err != nil {
			continue // fault already recorded
		}
		out = append(out, list...)
	}
	sh.indications.Inc()
	if len(out) > 0 {
		sh.controls.Add(uint64(len(out)))
	}
	return out, ctx
}

// LastIndicationTrace returns the xapp.invoke context of the most recent
// traced indication (zero if none yet) — the natural parent for controls
// injected outside the indication loop.
func (r *RIC) LastIndicationTrace() trace.Context {
	if c := r.lastTraced.Load(); c != nil {
		return *c
	}
	return trace.Context{}
}

// SendControl sends one control request on conn. When parent belongs to a
// live trace (and a tracer is attached) the message carries the trace
// trailer and the send is recorded as control.encode + transport spans.
// Callers must only pass a live parent on associations whose agent
// negotiated trace capability — old decoders reject unexpected trailers.
func (r *RIC) SendControl(conn *e2.Conn, reqID uint32, c *e2.ControlRequest, parent trace.Context) error {
	cm := &e2.Message{
		Type:        e2.TypeControlRequest,
		RequestID:   reqID,
		RANFunction: e2.RANFunctionRC,
		Control:     c,
	}
	if !r.cfg.Tracer.Enabled() || !parent.Valid() {
		return conn.Send(cm)
	}
	encodeID := trace.NewSpanID()
	transportID := trace.NewSpanID()
	cm.Trace = trace.Context{TraceID: parent.TraceID, SpanID: transportID}
	sendStart := time.Now()
	err := conn.Send(cm)
	sendDur := time.Since(sendStart)
	encDur := conn.LastEncodeDur()
	r.cfg.Tracer.Record(&trace.Span{
		TraceID: parent.TraceID, SpanID: encodeID, Parent: parent.SpanID,
		Name: trace.SpanControlEncode, Plane: trace.PlaneRIC,
		StartNs: sendStart.UnixNano(), DurNs: int64(encDur),
	})
	sp := &trace.Span{
		TraceID: parent.TraceID, SpanID: transportID, Parent: encodeID,
		Name: trace.SpanTransport, Plane: trace.PlaneRIC,
		StartNs: sendStart.Add(encDur).UnixNano(), DurNs: int64(sendDur - encDur),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	r.cfg.Tracer.Record(sp)
	return err
}

// Counters reports processed indication and emitted control counts summed
// across shards.
func (r *RIC) Counters() (indications, controls uint64) {
	for _, sh := range r.shards {
		indications += sh.indications.Value()
		controls += sh.controls.Value()
	}
	return indications, controls
}

// RICStats is the flat snapshot of the RIC's dispatch accounting.
type RICStats struct {
	Indications uint64 `json:"indications"`
	Controls    uint64 `json:"controls"`
	BatchFrames uint64 `json:"batch_frames"`
	// LiveAssociations is the number of associations currently served.
	LiveAssociations int64 `json:"live_associations"`
	// RefusedAssociations counts associations turned away by full shard
	// budgets.
	RefusedAssociations uint64 `json:"refused_associations"`
}

// Stats returns dispatch and association totals summed across shards.
func (r *RIC) Stats() RICStats {
	var s RICStats
	for _, sh := range r.shards {
		s.Indications += sh.indications.Value()
		s.Controls += sh.controls.Value()
		s.BatchFrames += sh.batchFrames.Value()
		s.LiveAssociations += sh.live.Load()
		s.RefusedAssociations += sh.refused.Value()
	}
	return s
}

// ShardStats returns per-shard association and dispatch counters.
func (r *RIC) ShardStats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.stats()
	}
	return out
}

// Register exposes the RIC on reg: dispatch counters, per-shard
// association fan-in instruments (one labelled series per shard), per-xApp
// invocation accounting, the xApp module cache, and — when Assoc is set —
// the association-resilience counters.
func (r *RIC) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_ric", "near-RT RIC indication/control dispatch counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			s := r.Stats()
			return []obs.Sample{
				{Suffix: "_indications_total", Value: float64(s.Indications)},
				{Suffix: "_controls_total", Value: float64(s.Controls)},
				{Suffix: "_batch_frames_total", Value: float64(s.BatchFrames)},
				{Suffix: "_live_associations", Value: float64(s.LiveAssociations)},
				{Suffix: "_refused_associations_total", Value: float64(s.RefusedAssociations)},
			}
		},
		JSON: func() any { return r.Stats() },
	}, labels...)
	reg.MustRegister("waran_ric_shard", "per-shard association fan-in counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			var out []obs.Sample
			for _, sh := range r.shards {
				s := sh.stats()
				lbl := []obs.Label{obs.L("shard", fmt.Sprint(s.Shard))}
				out = append(out,
					obs.Sample{Suffix: "_live_associations", Labels: lbl, Value: float64(s.LiveAssociations)},
					obs.Sample{Suffix: "_associations_total", Labels: lbl, Value: float64(s.Associations)},
					obs.Sample{Suffix: "_indications_total", Labels: lbl, Value: float64(s.Indications)},
					obs.Sample{Suffix: "_batch_frames_total", Labels: lbl, Value: float64(s.BatchFrames)},
					obs.Sample{Suffix: "_controls_total", Labels: lbl, Value: float64(s.Controls)},
				)
			}
			return out
		},
		JSON: func() any { return r.ShardStats() },
	}, labels...)
	reg.MustRegister("waran_ric_xapp", "per-xApp invocation and fault counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			var out []obs.Sample
			for _, x := range r.XApps() {
				s := x.Stats()
				lbl := []obs.Label{obs.L("xapp", x.Name)}
				out = append(out,
					obs.Sample{Suffix: "_invocations_total", Labels: lbl, Value: float64(s.Invocations)},
					obs.Sample{Suffix: "_faults_total", Labels: lbl, Value: float64(s.Faults)},
				)
			}
			return out
		},
		JSON: func() any {
			out := make(map[string]XAppStats)
			for _, x := range r.XApps() {
				out[x.Name] = x.Stats()
			}
			return out
		},
	}, labels...)
	if r.ov != nil {
		reg.MustRegister("waran_ric_overload", "overload-control shed ledger and brownout counters", obs.Func{
			Kind: obs.KindUntyped,
			Collect: func() []obs.Sample {
				s, _ := r.OverloadStats()
				return []obs.Sample{
					{Suffix: "_offered_total", Value: float64(s.Offered)},
					{Suffix: "_delivered_total", Value: float64(s.Delivered)},
					{Suffix: "_shed_overflow_total", Value: float64(s.ShedOverflow)},
					{Suffix: "_shed_stale_total", Value: float64(s.ShedStale)},
					{Suffix: "_shed_teardown_total", Value: float64(s.ShedTeardown)},
					{Suffix: "_refused_late_total", Value: float64(s.RefusedLate)},
					{Suffix: "_busy_admission_refusals_total", Value: float64(s.BusyAdmission)},
					{Suffix: "_refused_subscriptions_total", Value: float64(s.RefusedSubscriptions)},
					{Suffix: "_busy_backpressure_frames_total", Value: float64(s.BusyBackpressure)},
					{Suffix: "_shard_spills_total", Value: float64(s.Spills)},
					{Suffix: "_brownout_transitions_total", Value: float64(s.BrownoutTransitions)},
					{Suffix: "_brownout_level", Value: float64(r.ov.level.Load())},
					{Suffix: "_dispatch_p99_ms", Value: s.DispatchP99Ms},
				}
			},
			JSON: func() any { s, _ := r.OverloadStats(); return s },
		}, labels...)
	}
	r.Modules.Register(reg, labels...)
	if r.cfg.Assoc != nil {
		r.cfg.Assoc.Register(reg, labels...)
	}
}

// DefaultMissedHeartbeatLimit is how many consecutive silent heartbeat
// intervals declare an association dead when the RIC does not override it.
const DefaultMissedHeartbeatLimit = 3

// shardFor hashes an association onto a shard by its remote address;
// connections without a usable address spread round-robin.
func (r *RIC) shardFor(conn *e2.Conn) *shard {
	if addr := conn.RemoteAddr(); addr != nil {
		if s := addr.String(); s != "" {
			h := fnv.New32a()
			_, _ = io.WriteString(h, s)
			return r.shards[h.Sum32()%uint32(len(r.shards))]
		}
	}
	return r.shards[r.nextShard.Add(1)%uint64(len(r.shards))]
}

// Serve accepts associations on lis until stop closes, spawning one
// ServeConn goroutine per association (subject to the shard budgets) and
// waiting for them to finish. Closing stop closes the listener to unblock
// Accept; the caller keeps ownership of lis.
func (r *RIC) Serve(lis *e2.Listener, stop <-chan struct{}) error {
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		<-stop
		lis.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-stop:
				return nil
			default:
				return err
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.ServeConn(conn, stop)
			conn.Close()
		}()
	}
}

// ServeConn drives one E2-lite association from the RIC side: subscribe,
// then consume indications (unbatching windowed frames into their per-slot
// indications) and push control actions until the peer closes, stop is
// closed, or (with HeartbeatInterval set) liveness fails. Control acks and
// heartbeat echoes are consumed and counted. Closing stop closes the conn
// so a Recv blocked on a silent peer returns promptly. The association
// occupies one slot of its shard's goroutine budget; a full shard refuses
// the association — with an e2 error frame, or, when overload control is
// enabled and every shard is full, with a TypeBusy retry-after hint.
//
// With overload control enabled, admission additionally passes the shard's
// token bucket (refusals carry a retry-after hint sized to the bucket's
// refill) and a critically browned-out RIC refuses the association outright,
// so a reconnect stampede after a RIC restart ramps at AdmitRate per shard.
func (r *RIC) ServeConn(conn *e2.Conn, stop <-chan struct{}) error {
	hashed := r.shardFor(conn)
	if r.ov != nil {
		if lvl := r.ov.Level(); lvl >= BrownoutCritical {
			hashed.refused.Inc()
			r.ov.refusedSubs.Inc()
			r.recordAdmissionRefused("brownout-critical")
			_ = conn.Send(e2.NewBusyMessage(r.ov.cfg.RetryAfter, "ric: brownout critical, refusing new subscriptions"))
			conn.Close()
			return fmt.Errorf("ric: refusing association at brownout %s", lvl)
		}
		if ok, retryAfter := r.ov.admitAssoc(hashed.id, time.Now()); !ok {
			hashed.refused.Inc()
			r.ov.busyAdmission.Inc()
			r.recordAdmissionRefused("token-bucket")
			_ = conn.Send(e2.NewBusyMessage(retryAfter, fmt.Sprintf("ric: shard %d admission", hashed.id)))
			conn.Close()
			return fmt.Errorf("ric: shard %d admission gate closed (retry in %v)", hashed.id, retryAfter)
		}
	}
	sh, ok := r.acquireShard(hashed)
	if !ok {
		hashed.refused.Inc()
		if r.ov != nil {
			r.ov.busyAdmission.Inc()
			r.recordAdmissionRefused("budget-exhausted")
			_ = conn.Send(e2.NewBusyMessage(r.ov.cfg.RetryAfter, fmt.Sprintf("ric: shard %d association budget exhausted", hashed.id)))
		} else {
			_ = conn.Send(&e2.Message{Type: e2.TypeError, Error: &e2.ErrorBody{
				Reason: fmt.Sprintf("ric: shard %d association budget exhausted", hashed.id),
			}})
		}
		conn.Close()
		return fmt.Errorf("ric: shard %d association budget (%d) exhausted", hashed.id, cap(hashed.sem))
	}
	defer func() { <-sh.sem }()
	sh.assocTotal.Inc()
	sh.live.Add(1)
	defer sh.live.Add(-1)
	return r.serveConn(sh, conn, stop)
}

// recordAdmissionRefused journals one refused association with the gate that
// refused it, so a reconnect stampede is legible in a diagnostic bundle.
func (r *RIC) recordAdmissionRefused(gate string) {
	if rec := r.cfg.Flight; rec.Enabled() {
		rec.Record(flight.Event{
			Class: flight.EvAdmissionRefused, Plane: flight.PlaneRIC,
			Detail: gate,
		})
	}
}

// subscriptionMsg builds the RIC's subscription request at the given report
// period, advertising every capability the configuration enables — shared by
// the association handshake and brownout-driven mid-association
// re-subscriptions, so the agent renegotiates identical capabilities.
func (r *RIC) subscriptionMsg(reportPeriodMs uint32) *e2.Message {
	sub := &e2.Message{
		Type:         e2.TypeSubscriptionRequest,
		RequestID:    1,
		RANFunction:  e2.RANFunctionKPM,
		Subscription: &e2.SubscriptionRequest{ReportPeriodMs: reportPeriodMs},
	}
	if r.cfg.Tracer.Enabled() {
		// Advertise trace capability in the reserved RANFunction bit; old
		// agents echo it back untouched and keep sending untraced frames.
		sub.RANFunction |= e2.TraceCapabilityBit
	}
	if !r.cfg.DisableBatching {
		sub.RANFunction |= e2.BatchCapabilityBit
	}
	if r.ov != nil {
		sub.RANFunction |= e2.BusyCapabilityBit
	}
	return sub
}

func (r *RIC) serveConn(sh *shard, conn *e2.Conn, stop <-chan struct{}) error {
	if err := conn.Send(r.subscriptionMsg(r.cfg.ReportPeriodMs)); err != nil {
		return err
	}

	// The supervisor owns every reason to abandon a blocked Recv: stop
	// closing, and heartbeat liveness. Both act by closing the conn; the
	// flags tell the receive loop which exit it was.
	var stopped, dead atomic.Bool
	recvDone := make(chan struct{})
	superviseDone := make(chan struct{})
	go r.supervise(conn, stop, recvDone, superviseDone, &stopped, &dead)
	defer func() { close(recvDone); <-superviseDone }()

	// With overload control enabled, KPM indications take the queued path:
	// the receive loop only enqueues (so a slow dispatch can never back the
	// TCP stream up into the agent) and the dispatcher drains through the
	// same deliver path, shedding by policy. Control acks, heartbeats and
	// errors are still handled inline — they are never queued, never shed.
	var q *assocQueue
	var busyCapable atomic.Bool
	if r.ov != nil {
		q = newAssocQueue(r.ov.cfg.QueueDepth)
		go r.dispatchLoop(sh, conn, q, &busyCapable)
		defer func() { close(q.quit); <-q.done }()
	}

	reqID := uint32(100)
	assocTraced := false // agent answered with e2.TraceCapabilityToken
	for {
		m, err := conn.Recv()
		if err != nil {
			switch {
			case stopped.Load():
				return nil
			case dead.Load():
				return e2.ErrAssociationDead
			case errors.Is(err, io.EOF):
				return nil
			}
			return err
		}
		switch m.Type {
		case e2.TypeSubscriptionResponse:
			if !m.SubscriptionResp.Accepted {
				return fmt.Errorf("ric: subscription refused: %s", m.SubscriptionResp.Reason)
			}
			// The echoed RANFunction bit must NOT signal agent capability —
			// an old agent echoes it untouched. Only the explicit token
			// (inside the Reason's capability token list) does.
			assocTraced = r.cfg.Tracer.Enabled() &&
				e2.HasCapabilityToken(m.SubscriptionResp.Reason, e2.TraceCapabilityToken)
			busyCapable.Store(e2.HasCapabilityToken(m.SubscriptionResp.Reason, e2.OverloadCapabilityToken))
		case e2.TypeIndication:
			ctx := r.decodeCtx(conn, m.Trace, assocTraced, m.Indication.Slot, m.Indication.Cell)
			if q != nil {
				r.enqueueIndication(q, queuedInd{ind: m.Indication, ctx: ctx, enq: time.Now()})
				continue
			}
			if err := r.deliver(sh, conn, m.Indication, ctx, &reqID); err != nil {
				return err
			}
		case e2.TypeIndicationBatch:
			// Unbatch in arrival order through the exact per-indication
			// path, so batched delivery is indistinguishable to xApps.
			sh.batchFrames.Inc()
			inds := m.Batch.Indications
			ctx := trace.Context{}
			if len(inds) > 0 {
				ctx = r.decodeCtx(conn, m.Trace, assocTraced, inds[0].Slot, inds[0].Cell)
			}
			if q != nil {
				now := time.Now()
				for i := range inds {
					r.enqueueIndication(q, queuedInd{ind: &inds[i], ctx: ctx, enq: now})
				}
				continue
			}
			for i := range inds {
				if err := r.deliver(sh, conn, &inds[i], ctx, &reqID); err != nil {
					return err
				}
			}
		case e2.TypeControlAck, e2.TypeHeartbeat:
			// Counted implicitly by the transport; nothing to do.
		case e2.TypeError:
			return fmt.Errorf("ric: peer error: %s", m.Error.Reason)
		}
	}
}

// decodeCtx records the ric.decode span for one received indication frame
// (single or batched) and returns the context downstream dispatch parents
// to; untraced frames return a zero context.
func (r *RIC) decodeCtx(conn *e2.Conn, wire trace.Context, assocTraced bool, slot uint64, cell uint32) trace.Context {
	if !assocTraced || !wire.Valid() {
		return trace.Context{}
	}
	// The wire context names the agent's transport span; the decode span
	// parents to it and everything downstream parents to the decode.
	decDur := conn.LastDecodeDur()
	decID := trace.NewSpanID()
	r.cfg.Tracer.Record(&trace.Span{
		TraceID: wire.TraceID, SpanID: decID, Parent: wire.SpanID,
		Name: trace.SpanRICDecode, Plane: trace.PlaneRIC,
		Slot: slot, Cell: cell,
		StartNs: time.Now().Add(-decDur).UnixNano(), DurNs: int64(decDur),
	})
	return trace.Context{TraceID: wire.TraceID, SpanID: decID}
}

// deliver dispatches one per-slot indication to the xApps and sends the
// resulting controls back on the association.
func (r *RIC) deliver(sh *shard, conn *e2.Conn, ind *e2.Indication, ctx trace.Context, reqID *uint32) error {
	controls, cctx := r.handleIndicationOn(sh, ind, ctx)
	for i := range controls {
		*reqID++
		if err := r.SendControl(conn, *reqID, &controls[i], cctx); err != nil {
			return err
		}
	}
	return nil
}

// supervise watches one association from the side: it closes the conn when
// stop fires (prompt shutdown even with a silent peer), and when
// heartbeats are enabled it sends the probe at every interval and declares
// the association dead after MissedHeartbeatLimit silent intervals.
func (r *RIC) supervise(conn *e2.Conn, stop <-chan struct{}, recvDone <-chan struct{},
	done chan<- struct{}, stopped, dead *atomic.Bool) {
	defer close(done)
	var tick <-chan time.Time
	if r.cfg.HeartbeatInterval > 0 {
		ticker := time.NewTicker(r.cfg.HeartbeatInterval)
		defer ticker.Stop()
		tick = ticker.C
	}
	limit := r.cfg.MissedHeartbeatLimit
	if limit <= 0 {
		limit = DefaultMissedHeartbeatLimit
	}
	misses := 0
	for {
		select {
		case <-stop:
			stopped.Store(true)
			conn.Close()
			return
		case <-recvDone:
			return
		case <-tick:
			// A healthy peer's echo keeps the age right around one
			// interval, so allow half an interval of scheduling slack
			// before calling it a miss.
			if time.Since(conn.LastRecv()) > r.cfg.HeartbeatInterval*3/2 {
				misses++
				if r.cfg.Assoc != nil {
					r.cfg.Assoc.MissedHeartbeats.Inc()
				}
				if misses >= limit {
					dead.Store(true)
					if r.cfg.Assoc != nil {
						r.cfg.Assoc.DeadAssociations.Inc()
					}
					conn.Close()
					return
				}
			} else {
				misses = 0
			}
			// Probe regardless: the agent echoes, refreshing LastRecv on
			// an otherwise idle but healthy association.
			if err := conn.Send(&e2.Message{Type: e2.TypeHeartbeat}); err != nil {
				return
			}
		}
	}
}

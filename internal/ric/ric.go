package ric

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"waran/internal/e2"
	"waran/internal/obs"
	"waran/internal/obs/trace"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// RIC is the near-RT RIC host: it owns the xApp registry, dispatches
// indications to every enabled xApp, aggregates their control actions, and
// drives the E2-lite association with a gNB.
type RIC struct {
	mu     sync.Mutex
	xapps  []*XApp
	byName map[string]*XApp

	// ReportPeriodMs is the indication cadence requested at subscription
	// (default 100 ms).
	ReportPeriodMs uint32
	// HeartbeatInterval, when > 0, makes ServeConn send heartbeats at
	// this cadence and track liveness: after MissedHeartbeatLimit
	// intervals with no inbound frame the association is declared dead,
	// the conn closed, and ServeConn returns e2.ErrAssociationDead. Zero
	// disables heartbeats (the pre-resilience behaviour).
	HeartbeatInterval time.Duration
	// MissedHeartbeatLimit is how many silent heartbeat intervals kill
	// the association (default DefaultMissedHeartbeatLimit).
	MissedHeartbeatLimit int
	// Assoc, when set, receives association-resilience counters (missed
	// heartbeats, dead associations) from every ServeConn.
	Assoc *AssocMetrics
	// OnFault observes xApp failures.
	OnFault func(xapp string, err error)
	// OnLog receives xApp log lines.
	OnLog func(xapp, msg string)

	// KPM stores the indication history for analytics and tests.
	KPM *KPMStore
	// Modules content-addresses uploaded xApp bytecode: installing the
	// same bytes under several names (or re-installing after a remove)
	// compiles once.
	Modules *wabi.ModuleCache

	// Tracer, when non-nil, makes ServeConn negotiate trace propagation
	// with the agent and record ric.decode / xapp.invoke / control.encode /
	// transport spans on the RIC plane. Set before serving.
	Tracer *trace.Tracer
	// Profile, when non-nil, attaches the per-function wasm profiler to
	// every xApp installed afterwards (tagged with the xApp name).
	Profile *wasm.Profile

	// lastTraced remembers the most recent traced indication's xapp.invoke
	// context, so out-of-band controls (operator-initiated uploads) can
	// join the decision tree that provoked them.
	lastTraced atomic.Pointer[trace.Context]

	// Counters.
	indications uint64
	controls    uint64
}

// New creates an empty RIC.
func New() *RIC {
	return &RIC{
		byName:         make(map[string]*XApp),
		ReportPeriodMs: 100,
		KPM:            NewKPMStore(0),
		Modules:        wabi.NewModuleCache(),
	}
}

// AddXAppWAT compiles WAT source and installs it as an xApp. The plugin
// gets the RIC host functions under module "ric" plus the standard wabi
// ABI; a zero policy receives a 16 MiB cap and 10M-instruction fuel budget.
func (r *RIC) AddXAppWAT(name, src string, policy wabi.Policy) (*XApp, error) {
	mod, err := wabi.CompileWAT(src)
	if err != nil {
		return nil, fmt.Errorf("ric: compile xApp %q: %w", name, err)
	}
	return r.AddXApp(name, mod, policy)
}

// AddXAppBytecode installs Wasm bytecode as an xApp — the operator upload
// path. The bytecode is resolved through the RIC's content-addressed
// module cache, so identical bytes decode/validate/flatten at most once.
func (r *RIC) AddXAppBytecode(name string, bin []byte, policy wabi.Policy) (*XApp, error) {
	mod, err := r.Modules.Load(bin)
	if err != nil {
		return nil, fmt.Errorf("ric: rejected xApp %q bytecode: %w", name, err)
	}
	return r.AddXApp(name, mod, policy)
}

// AddXApp installs a compiled module as an xApp.
func (r *RIC) AddXApp(name string, mod *wabi.Module, policy wabi.Policy) (*XApp, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("ric: xApp %q already installed", name)
	}
	if policy.MaxMemoryPages == 0 {
		policy.MaxMemoryPages = 256
	}
	if policy.Fuel == 0 {
		policy.Fuel = 10_000_000
	}
	x := &XApp{Name: name}
	env := wabi.Env{
		HostFuncs: wasm.Imports{"ric": r.hostFuncs(x)},
	}
	if r.OnLog != nil {
		env.OnLog = func(msg string) { r.OnLog(name, msg) }
	}
	if r.Profile != nil {
		env.Profile = r.Profile
		env.ProfileTag = name
	}
	plugin, err := wabi.NewPlugin(mod, policy, env)
	if err != nil {
		return nil, fmt.Errorf("ric: instantiate xApp %q: %w", name, err)
	}
	if !plugin.HasEntry(XAppEntry) {
		return nil, fmt.Errorf("ric: xApp %q does not export %q with signature () -> i32", name, XAppEntry)
	}
	x.plugin = plugin
	r.xapps = append(r.xapps, x)
	r.byName[name] = x
	return x, nil
}

// XApp looks up an installed xApp by name.
func (r *RIC) XApp(name string) (*XApp, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	x, ok := r.byName[name]
	return x, ok
}

// XApps returns installed xApps in installation order.
func (r *RIC) XApps() []*XApp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*XApp(nil), r.xapps...)
}

// RemoveXApp uninstalls an xApp — like slice plugins, xApps come and go
// without restarting the RIC.
func (r *RIC) RemoveXApp(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	x, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("ric: no xApp %q", name)
	}
	delete(r.byName, name)
	for i, v := range r.xapps {
		if v == x {
			r.xapps = append(r.xapps[:i], r.xapps[i+1:]...)
			break
		}
	}
	return nil
}

// HandleIndication dispatches one indication to every enabled xApp and
// returns the aggregated control actions. Individual xApp faults are
// contained (counted, possibly quarantining the xApp) and do not fail the
// dispatch.
func (r *RIC) HandleIndication(ind *e2.Indication) []e2.ControlRequest {
	out, _ := r.HandleIndicationTraced(ind, trace.Context{})
	return out
}

// HandleIndicationTraced is HandleIndication carrying the indication's trace
// context: with tracing on, the whole xApp dispatch is recorded as one
// xapp.invoke span and the returned context names that span, so the caller
// parents the resulting control sends to it. With a zero ctx (or no tracer)
// it behaves exactly like HandleIndication and echoes ctx back.
func (r *RIC) HandleIndicationTraced(ind *e2.Indication, ctx trace.Context) ([]e2.ControlRequest, trace.Context) {
	tracing := r.Tracer.Enabled() && ctx.Valid()
	var start time.Time
	if tracing {
		start = time.Now()
		c := trace.Context{TraceID: ctx.TraceID, SpanID: trace.NewSpanID()}
		r.lastTraced.Store(&c)
		defer func() {
			r.Tracer.Record(&trace.Span{
				TraceID: c.TraceID, SpanID: c.SpanID, Parent: ctx.SpanID,
				Name: trace.SpanXAppInvoke, Plane: trace.PlaneRIC,
				Slot: ind.Slot, Cell: ind.Cell,
				StartNs: start.UnixNano(), DurNs: int64(time.Since(start)),
			})
		}()
		ctx = c
	}
	if r.KPM != nil {
		r.KPM.Record(time.Now(), ind)
	}
	payload := e2.AppendIndicationBody(nil, ind)
	var out []e2.ControlRequest
	for _, x := range r.XApps() {
		list, err := x.invoke(r, payload)
		if err != nil {
			continue // fault already recorded
		}
		out = append(out, list...)
	}
	r.mu.Lock()
	r.indications++
	r.controls += uint64(len(out))
	r.mu.Unlock()
	return out, ctx
}

// LastIndicationTrace returns the xapp.invoke context of the most recent
// traced indication (zero if none yet) — the natural parent for controls
// injected outside the indication loop.
func (r *RIC) LastIndicationTrace() trace.Context {
	if c := r.lastTraced.Load(); c != nil {
		return *c
	}
	return trace.Context{}
}

// SendControl sends one control request on conn. When parent belongs to a
// live trace (and a tracer is attached) the message carries the trace
// trailer and the send is recorded as control.encode + transport spans.
// Callers must only pass a live parent on associations whose agent
// negotiated trace capability — old decoders reject unexpected trailers.
func (r *RIC) SendControl(conn *e2.Conn, reqID uint32, c *e2.ControlRequest, parent trace.Context) error {
	cm := &e2.Message{
		Type:        e2.TypeControlRequest,
		RequestID:   reqID,
		RANFunction: e2.RANFunctionRC,
		Control:     c,
	}
	if !r.Tracer.Enabled() || !parent.Valid() {
		return conn.Send(cm)
	}
	encodeID := trace.NewSpanID()
	transportID := trace.NewSpanID()
	cm.Trace = trace.Context{TraceID: parent.TraceID, SpanID: transportID}
	sendStart := time.Now()
	err := conn.Send(cm)
	sendDur := time.Since(sendStart)
	encDur := conn.LastEncodeDur()
	r.Tracer.Record(&trace.Span{
		TraceID: parent.TraceID, SpanID: encodeID, Parent: parent.SpanID,
		Name: trace.SpanControlEncode, Plane: trace.PlaneRIC,
		StartNs: sendStart.UnixNano(), DurNs: int64(encDur),
	})
	sp := &trace.Span{
		TraceID: parent.TraceID, SpanID: transportID, Parent: encodeID,
		Name: trace.SpanTransport, Plane: trace.PlaneRIC,
		StartNs: sendStart.Add(encDur).UnixNano(), DurNs: int64(sendDur - encDur),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	r.Tracer.Record(sp)
	return err
}

// Counters reports processed indication and emitted control counts.
func (r *RIC) Counters() (indications, controls uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.indications, r.controls
}

// RICStats is the flat snapshot of the RIC's dispatch accounting.
type RICStats struct {
	Indications uint64 `json:"indications"`
	Controls    uint64 `json:"controls"`
}

// Stats returns processed indication and emitted control counts.
func (r *RIC) Stats() RICStats {
	ind, ctl := r.Counters()
	return RICStats{Indications: ind, Controls: ctl}
}

// Register exposes the RIC on reg: dispatch counters, per-xApp invocation
// accounting (one labelled series per installed xApp, tracking installs and
// removals at scrape time), the xApp module cache, and — when Assoc is set —
// the association-resilience counters.
func (r *RIC) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.MustRegister("waran_ric", "near-RT RIC indication/control dispatch counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			s := r.Stats()
			return []obs.Sample{
				{Suffix: "_indications_total", Value: float64(s.Indications)},
				{Suffix: "_controls_total", Value: float64(s.Controls)},
			}
		},
		JSON: func() any { return r.Stats() },
	}, labels...)
	reg.MustRegister("waran_ric_xapp", "per-xApp invocation and fault counters", obs.Func{
		Kind: obs.KindUntyped,
		Collect: func() []obs.Sample {
			var out []obs.Sample
			for _, x := range r.XApps() {
				s := x.Stats()
				lbl := []obs.Label{obs.L("xapp", x.Name)}
				out = append(out,
					obs.Sample{Suffix: "_invocations_total", Labels: lbl, Value: float64(s.Invocations)},
					obs.Sample{Suffix: "_faults_total", Labels: lbl, Value: float64(s.Faults)},
				)
			}
			return out
		},
		JSON: func() any {
			out := make(map[string]XAppStats)
			for _, x := range r.XApps() {
				out[x.Name] = x.Stats()
			}
			return out
		},
	}, labels...)
	r.Modules.Register(reg, labels...)
	if r.Assoc != nil {
		r.Assoc.Register(reg, labels...)
	}
}

// DefaultMissedHeartbeatLimit is how many consecutive silent heartbeat
// intervals declare an association dead when the RIC does not override it.
const DefaultMissedHeartbeatLimit = 3

// ServeConn drives one E2-lite association from the RIC side: subscribe,
// then consume indications and push control actions until the peer closes,
// stop is closed, or (with HeartbeatInterval set) liveness fails. Control
// acks and heartbeat echoes are consumed and counted. Closing stop closes
// the conn so a Recv blocked on a silent peer returns promptly.
func (r *RIC) ServeConn(conn *e2.Conn, stop <-chan struct{}) error {
	sub := &e2.Message{
		Type:         e2.TypeSubscriptionRequest,
		RequestID:    1,
		RANFunction:  e2.RANFunctionKPM,
		Subscription: &e2.SubscriptionRequest{ReportPeriodMs: r.ReportPeriodMs},
	}
	if r.Tracer.Enabled() {
		// Advertise trace capability in the reserved RANFunction bit; old
		// agents echo it back untouched and keep sending untraced frames.
		sub.RANFunction |= e2.TraceCapabilityBit
	}
	if err := conn.Send(sub); err != nil {
		return err
	}

	// The supervisor owns every reason to abandon a blocked Recv: stop
	// closing, and heartbeat liveness. Both act by closing the conn; the
	// flags tell the receive loop which exit it was.
	var stopped, dead atomic.Bool
	recvDone := make(chan struct{})
	superviseDone := make(chan struct{})
	go r.supervise(conn, stop, recvDone, superviseDone, &stopped, &dead)
	defer func() { close(recvDone); <-superviseDone }()

	reqID := uint32(100)
	assocTraced := false // agent answered with e2.TraceCapabilityToken
	for {
		m, err := conn.Recv()
		if err != nil {
			switch {
			case stopped.Load():
				return nil
			case dead.Load():
				return e2.ErrAssociationDead
			case errors.Is(err, io.EOF):
				return nil
			}
			return err
		}
		switch m.Type {
		case e2.TypeSubscriptionResponse:
			if !m.SubscriptionResp.Accepted {
				return fmt.Errorf("ric: subscription refused: %s", m.SubscriptionResp.Reason)
			}
			// The echoed RANFunction bit must NOT signal agent capability —
			// an old agent echoes it untouched. Only the explicit token does.
			assocTraced = r.Tracer.Enabled() &&
				m.SubscriptionResp.Reason == e2.TraceCapabilityToken
		case e2.TypeIndication:
			ctx := trace.Context{}
			if assocTraced && m.Trace.Valid() {
				// The wire context names the agent's transport span; the
				// decode span parents to it and everything downstream
				// parents to the decode.
				decDur := conn.LastDecodeDur()
				decID := trace.NewSpanID()
				r.Tracer.Record(&trace.Span{
					TraceID: m.Trace.TraceID, SpanID: decID, Parent: m.Trace.SpanID,
					Name: trace.SpanRICDecode, Plane: trace.PlaneRIC,
					Slot: m.Indication.Slot, Cell: m.Indication.Cell,
					StartNs: time.Now().Add(-decDur).UnixNano(), DurNs: int64(decDur),
				})
				ctx = trace.Context{TraceID: m.Trace.TraceID, SpanID: decID}
			}
			controls, cctx := r.HandleIndicationTraced(m.Indication, ctx)
			for i := range controls {
				reqID++
				if err := r.SendControl(conn, reqID, &controls[i], cctx); err != nil {
					return err
				}
			}
		case e2.TypeControlAck, e2.TypeHeartbeat:
			// Counted implicitly by the transport; nothing to do.
		case e2.TypeError:
			return fmt.Errorf("ric: peer error: %s", m.Error.Reason)
		}
	}
}

// supervise watches one association from the side: it closes the conn when
// stop fires (prompt shutdown even with a silent peer), and when
// heartbeats are enabled it sends the probe at every interval and declares
// the association dead after MissedHeartbeatLimit silent intervals.
func (r *RIC) supervise(conn *e2.Conn, stop <-chan struct{}, recvDone <-chan struct{},
	done chan<- struct{}, stopped, dead *atomic.Bool) {
	defer close(done)
	var tick <-chan time.Time
	if r.HeartbeatInterval > 0 {
		ticker := time.NewTicker(r.HeartbeatInterval)
		defer ticker.Stop()
		tick = ticker.C
	}
	limit := r.MissedHeartbeatLimit
	if limit <= 0 {
		limit = DefaultMissedHeartbeatLimit
	}
	misses := 0
	for {
		select {
		case <-stop:
			stopped.Store(true)
			conn.Close()
			return
		case <-recvDone:
			return
		case <-tick:
			// A healthy peer's echo keeps the age right around one
			// interval, so allow half an interval of scheduling slack
			// before calling it a miss.
			if time.Since(conn.LastRecv()) > r.HeartbeatInterval*3/2 {
				misses++
				if r.Assoc != nil {
					r.Assoc.MissedHeartbeats.Inc()
				}
				if misses >= limit {
					dead.Store(true)
					if r.Assoc != nil {
						r.Assoc.DeadAssociations.Inc()
					}
					conn.Close()
					return
				}
			} else {
				misses = 0
			}
			// Probe regardless: the agent echoes, refreshing LastRecv on
			// an otherwise idle but healthy association.
			if err := conn.Send(&e2.Message{Type: e2.TypeHeartbeat}); err != nil {
				return
			}
		}
	}
}

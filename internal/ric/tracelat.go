package ric

import (
	"fmt"
	"net"
	"sync"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/obs"
	"waran/internal/obs/trace"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// TraceLatConfig parameterizes the control-loop tracing experiment: a
// multi-cell gNB group and a live RIC joined over loopback with trace
// propagation negotiated on every association, plus the wasm fuel profiler
// attached to both sched plugins and xApps.
type TraceLatConfig struct {
	// Cells is the gNB group size (default 4).
	Cells int
	// Slots is how many MAC slots to run before the settle phase
	// (default 1200).
	Slots int
	// ReportPeriodMs is the indication cadence (default 10; 1 ms slots).
	ReportPeriodMs uint32
	// Seed selects the jitter schedules (0 behaves as 1).
	Seed int64
	// Pacing is slept after every slot so the live associations get
	// wall-clock room (default 200 us).
	Pacing time.Duration
	// SpanCap is each plane's span-ring capacity (default 8192).
	SpanCap int
	// Obs, when non-nil, receives the RIC's and the cell group's
	// instruments, and the result embeds its snapshot.
	Obs *obs.Registry
}

func (c TraceLatConfig) withDefaults() TraceLatConfig {
	if c.Cells <= 0 {
		c.Cells = 4
	}
	if c.Slots <= 0 {
		c.Slots = 1200
	}
	if c.ReportPeriodMs == 0 {
		c.ReportPeriodMs = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Pacing <= 0 {
		c.Pacing = 200 * time.Microsecond
	}
	if c.SpanCap <= 0 {
		c.SpanCap = 8192
	}
	return c
}

// TraceLatResult reports the experiment outcome: the per-hop latency
// distribution of the control loop and the hottest plugin functions by fuel.
type TraceLatResult struct {
	Cells int `json:"cells"`
	Slots int `json:"slots"`
	// Spans is how many spans the tracer retained across both planes.
	Spans int `json:"spans"`

	Indications  uint64 `json:"indications_sent"`
	ControlsOK   uint64 `json:"controls_applied"`
	ControlsFail uint64 `json:"controls_failed"`

	// DistinctHopKinds counts span names seen anywhere; MaxTraceHopKinds is
	// the deepest single decision — the experiment fails below 7 (a full
	// indication → control → apply → effect loop).
	DistinctHopKinds int `json:"distinct_hop_kinds"`
	MaxTraceHopKinds int `json:"max_trace_hop_kinds"`
	// SwapInjected reports whether the mid-run scheduler swap joined a live
	// trace (adding swap.canary as the 8th hop kind).
	SwapInjected bool `json:"swap_injected"`

	// Hops is the per-hop latency distribution (p50/p99/max) in canonical
	// span order.
	Hops []trace.HopStat `json:"hops"`
	// TopFunctions is the top-10 plugin functions by self fuel, across
	// sched plugins and xApps (tags disambiguate).
	TopFunctions []wasm.FuncProfile `json:"top_functions"`

	Obs map[string]any `json:"obs,omitempty"`
}

// RunTraceLat runs the end-to-end control-loop tracing experiment: Cells
// gNB cells with a supervised, profiled scheduler plugin each hold one
// traced association to a RIC running the SLA-assurance xApp. The slice
// target is set far above the offered load, so the xApp emits controls every
// report period and each one's full causal chain — indication.encode,
// transport, ric.decode, xapp.invoke, control.encode, transport, gnb.apply,
// slot.effect — lands in the span rings. Mid-run a scheduler swap is
// injected parented to the latest decision, adding swap.canary to the tree.
func RunTraceLat(cfg TraceLatConfig) (*TraceLatResult, error) {
	cfg = cfg.withDefaults()

	profile := wasm.NewProfile()
	tracer := trace.NewTracer(cfg.SpanCap)

	// The gNB side: Cells cells, one tenant slice each, supervised pooled
	// round-robin plugin, profiler attached through the group env. The SLA
	// target is deliberately unreachable so the xApp never goes quiet.
	cg, err := core.NewCellGroup(ran.CellConfig{}, core.CellGroupConfig{
		Cells: cfg.Cells, Parallelism: cfg.Cells,
	})
	if err != nil {
		return nil, err
	}
	const sliceID = 1
	for c := 0; c < cfg.Cells; c++ {
		gnb := cg.Cell(c)
		if _, err := gnb.Slices.AddSlice(sliceID, "tenant", 100e6, sched.RoundRobin{}, nil); err != nil {
			return nil, err
		}
		for k := 0; k < 2; k++ {
			ue := ran.NewUE(uint32(1+k), sliceID, 20+2*k)
			ue.Traffic = ran.NewCBR(3e6)
			if err := gnb.AttachUE(ue); err != nil {
				return nil, err
			}
		}
	}
	cg.PluginEnv = wabi.Env{Profile: profile}
	if _, err := cg.InstallSupervisedScheduler(sliceID, "rr", wabi.Policy{}, wabi.Env{}, cfg.Cells, guard.Config{}); err != nil {
		return nil, err
	}
	cg.EnableTracing(tracer)
	if cfg.Obs != nil {
		cg.EnableObservability(cfg.Obs, nil)
	}

	// The RIC side: tracer + shared profiler, SLA xApp.
	r, err := New(Config{
		ReportPeriodMs: cfg.ReportPeriodMs,
		Tracer:         tracer,
		Profile:        profile,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		// The cell group registered its module cache already; the plane
		// label keeps the RIC's series distinct.
		r.Register(cfg.Obs, obs.L("plane", trace.PlaneRIC))
	}
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		return nil, err
	}

	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		return nil, err
	}
	defer lis.Close()

	// One ServeConn goroutine per accepted association (one per cell); the
	// conns are retained so the swap injection can ride an existing
	// trace-negotiated association.
	stop := make(chan struct{})
	var mu sync.Mutex
	var conns []*e2.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = r.ServeConn(conn, stop)
				conn.Close()
			}()
		}
	}()

	addr := lis.Addr().String()
	dial := func() (*e2.Conn, error) {
		raw, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		return e2.NewConn(raw, e2.BinaryCodec{}), nil
	}
	sessions := make([]*AgentSession, cfg.Cells)
	for i := range sessions {
		sessions[i], err = NewAgentSession(AgentSessionConfig{
			Dial:    dial,
			RAN:     cg.Cell(i),
			Agent:   AgentConfig{Cell: uint32(i), Tracer: tracer},
			Backoff: Backoff{Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond},
			Seed:    cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		sessions[i].Start()
	}

	step := func(slot uint64) {
		cg.StepAll()
		for _, s := range sessions {
			s.Tick(slot)
		}
		time.Sleep(cfg.Pacing)
	}

	res := &TraceLatResult{Cells: cfg.Cells, Slots: cfg.Slots}

	// Main phase, with the swap injected once past the midpoint (as soon as
	// a traced decision exists to parent it to): an operator-style
	// swap-scheduler control that goes through the supervisor's shadow
	// validation on a supervised slice — the swap.canary hop.
	slot := uint64(0)
	for ; slot < uint64(cfg.Slots); slot++ {
		step(slot)
		if !res.SwapInjected && slot >= uint64(cfg.Slots/2) {
			parent := r.LastIndicationTrace()
			mu.Lock()
			var conn *e2.Conn
			if len(conns) > 0 {
				conn = conns[0]
			}
			mu.Unlock()
			if parent.Valid() && conn != nil {
				ctrl := &e2.ControlRequest{Action: e2.ActionSwapScheduler, SliceID: sliceID, Text: "pf"}
				if err := r.SendControl(conn, 9000, ctrl, parent); err == nil {
					res.SwapInjected = true
				}
			}
		}
	}

	// Settle phase: keep the loop alive (bounded) until the deepest trace
	// shows the full hop chain, so the claim below is measured on a
	// completed decision rather than a half-landed one.
	want := 7
	if res.SwapInjected {
		want = 8
	}
	extra := uint64(cfg.Slots) * 4
	for i := uint64(0); i < extra; i++ {
		if i%50 == 0 && trace.MaxTraceHopKinds(tracer.Snapshot()) >= want {
			break
		}
		step(slot)
		slot++
	}

	for _, s := range sessions {
		s.Stop()
	}
	close(stop)
	lis.Close() // unblock Accept
	wg.Wait()

	for _, s := range sessions {
		ind, ok, fail, _ := s.Counters()
		res.Indications += ind
		res.ControlsOK += ok
		res.ControlsFail += fail
	}
	spans := tracer.Snapshot()
	res.Spans = len(spans)
	res.Hops = trace.HopStats(spans)
	res.DistinctHopKinds = trace.DistinctHopKinds(spans)
	res.MaxTraceHopKinds = trace.MaxTraceHopKinds(spans)
	res.TopFunctions = profile.Top(10)
	if cfg.Obs != nil {
		res.Obs = cfg.Obs.Snapshot()
	}
	if res.MaxTraceHopKinds < 7 {
		return res, fmt.Errorf("ric: tracelat: deepest trace has %d hop kinds, want >= 7", res.MaxTraceHopKinds)
	}
	return res, nil
}

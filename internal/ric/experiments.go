package ric

import (
	"waran/internal/core"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// The association-resilience experiment spans both sides of E2, so it
// registers from here rather than internal/core: core stays free of a ric
// dependency, and any binary that links ric (cmd/waranbench does, blank
// import) sees "e2faults" in the experiment registry.
func init() {
	core.RegisterExperimentFunc("e2faults",
		"association resilience under transport faults: drop, reset, half-open (JSON)",
		runE2FaultsExperiment)
	core.RegisterExperimentFunc("tracelat",
		"end-to-end control-loop tracing: per-hop latency + hottest plugin functions (JSON)",
		runTraceLatExperiment)
}

// runTraceLatExperiment maps the shared knob set onto the tracing
// experiment's config.
func runTraceLatExperiment(cfg core.ExpConfig) (any, error) {
	return RunTraceLat(TraceLatConfig{
		Cells: cfg.Cells,
		Slots: cfg.Slots,
		Seed:  cfg.Seed,
		Obs:   cfg.Obs,
	})
}

// runE2FaultsExperiment builds the experiment's standard gNB — one tenant
// slice on the round-robin plugin with a deliberately over-ambitious SLA,
// so the SLA-assurance xApp keeps emitting controls and control delivery
// after recovery is observable — and runs the fault storm against it.
func runE2FaultsExperiment(cfg core.ExpConfig) (any, error) {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		return nil, err
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		return nil, err
	}
	if _, err := gnb.Slices.AddSlice(1, "tenant", 100e6, rr, nil); err != nil {
		return nil, err
	}
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(3e6)
	if err := gnb.AttachUE(ue); err != nil {
		return nil, err
	}

	return RunE2Faults(E2FaultsConfig{
		Slots:            cfg.Slots,
		Drop:             cfg.Drop,
		ResetAfterWrites: cfg.ResetAfterWrites,
		Seed:             cfg.Seed,
		Heartbeat:        cfg.Heartbeat,
		Obs:              cfg.Obs,
	}, gnb, func(uint64) { gnb.Step() })
}

package ric

import (
	"time"

	"waran/internal/core"
	"waran/internal/ran"
	"waran/internal/wabi"
)

// The association-resilience experiment spans both sides of E2, so it
// registers from here rather than internal/core: core stays free of a ric
// dependency, and any binary that links ric (cmd/waranbench does, blank
// import) sees "e2faults" in the experiment registry.
func init() {
	core.RegisterExperimentWithFlags("e2faults",
		"association resilience under transport faults: drop, reset, half-open (JSON)",
		[]core.ExpFlag{
			core.IntExpFlag("slots", 2000, "MAC slots to run", func(c *core.ExpConfig, v int) { c.Slots = v }),
			core.FloatExpFlag("drop", 0.05, "drop probability on the lossy connection", func(c *core.ExpConfig, v float64) { c.Drop = v }),
			core.IntExpFlag("reset", 25, "forced reset after N writes on the lossy connection", func(c *core.ExpConfig, v int) { c.ResetAfterWrites = v }),
			core.Int64ExpFlag("seed", 1, "fault schedule seed", func(c *core.ExpConfig, v int64) { c.Seed = v }),
			core.DurationExpFlag("hb", 5*time.Millisecond, "RIC heartbeat interval", func(c *core.ExpConfig, v time.Duration) { c.Heartbeat = v }),
		},
		runE2FaultsExperiment)
	core.RegisterExperimentWithFlags("citysim",
		"city-scale: 1000+ batched E2 associations into a sharded RIC over a 1M-UE cell fleet (JSON)",
		[]core.ExpFlag{
			core.IntExpFlag("cells", 256, "cells in the fleet", func(c *core.ExpConfig, v int) { c.Cells = v }),
			core.IntExpFlag("ues", 4096, "modeled UEs per cell", func(c *core.ExpConfig, v int) { c.UEsPerCell = v }),
			core.IntExpFlag("sectors", 4, "E2 associations per cell", func(c *core.ExpConfig, v int) { c.Sectors = v }),
			core.IntExpFlag("slots", 1500, "MAC slots to run", func(c *core.ExpConfig, v int) { c.Slots = v }),
			core.IntExpFlag("shards", 16, "RIC association shards", func(c *core.ExpConfig, v int) { c.Shards = v }),
			core.IntExpFlag("window", 8, "KPM batching window in report periods (1 disables)", func(c *core.ExpConfig, v int) { c.BatchWindow = v }),
			core.Int64ExpFlag("seed", 1, "per-cell population seed", func(c *core.ExpConfig, v int64) { c.Seed = v }),
			core.IntExpFlag("overload", 0, "enable the RIC overload guard (1 enables, defaults applied)", func(c *core.ExpConfig, v int) { c.Overload = v }),
		},
		runCitySimExperiment)
	core.RegisterExperimentWithFlags("overload",
		"overload chaos: RIC kill+restart reconnect ramp, shed-ledger conservation, slow-xApp isolation on/off (JSON)",
		[]core.ExpFlag{
			core.IntExpFlag("agents", 1024, "reconnect-storm fleet size", func(c *core.ExpConfig, v int) { c.Agents = v }),
			core.IntExpFlag("shards", 16, "RIC association shards", func(c *core.ExpConfig, v int) { c.Shards = v }),
			core.FloatExpFlag("admitrate", 64, "admission tokens/sec per shard", func(c *core.ExpConfig, v float64) { c.AdmitRate = v }),
			core.IntExpFlag("burst", 8, "admission token bucket capacity", func(c *core.ExpConfig, v int) { c.AdmitBurst = v }),
			core.DurationExpFlag("outage", 250*time.Millisecond, "RIC downtime before the restart", func(c *core.ExpConfig, v time.Duration) { c.Outage = v }),
			core.DurationExpFlag("dwell", 3*time.Second, "slow-xApp measurement window per arm", func(c *core.ExpConfig, v time.Duration) { c.Dwell = v }),
			core.IntExpFlag("stalliters", 1_000_000, "slow xApp spin iterations per dispatch", func(c *core.ExpConfig, v int) { c.StallIters = v }),
			core.Int64ExpFlag("seed", 1, "session jitter schedule seed", func(c *core.ExpConfig, v int64) { c.Seed = v }),
			core.IntExpFlag("flight", 0, "arm the flight recorder; fail unless admission refusals and the breaker trip reach a diagnostic bundle", func(c *core.ExpConfig, v int) { c.Flight = v }),
			core.StringExpFlag("flightdir", "", "diagnostic bundle directory (empty = temp dir)", func(c *core.ExpConfig, v string) { c.FlightDir = v }),
		},
		runOverloadExperiment)
	core.RegisterExperimentWithFlags("flightrec",
		"flight recorder: seeded overload storm must leave its causal chain (brownout, sheds, breaker trip) in anomaly-triggered bundles, idle journal within noise (JSON)",
		[]core.ExpFlag{
			core.IntExpFlag("agents", 16, "reporting fleet size", func(c *core.ExpConfig, v int) { c.Agents = v }),
			core.IntExpFlag("stalliters", 400_000, "slow xApp spin iterations per dispatch", func(c *core.ExpConfig, v int) { c.StallIters = v }),
			core.DurationExpFlag("dwell", 1500*time.Millisecond, "storm window", func(c *core.ExpConfig, v time.Duration) { c.Dwell = v }),
			core.IntExpFlag("slots", 2000, "slots per journal-overhead measurement arm", func(c *core.ExpConfig, v int) { c.Slots = v }),
			core.Int64ExpFlag("seed", 1, "storm schedule seed", func(c *core.ExpConfig, v int64) { c.Seed = v }),
			core.StringExpFlag("flightdir", "", "diagnostic bundle directory (empty = temp dir)", func(c *core.ExpConfig, v string) { c.FlightDir = v }),
		},
		runFlightRecExperiment)
	core.RegisterExperimentWithFlags("tracelat",
		"end-to-end control-loop tracing: per-hop latency + hottest plugin functions (JSON)",
		[]core.ExpFlag{
			core.IntExpFlag("cells", 4, "number of gNB cells", func(c *core.ExpConfig, v int) { c.Cells = v }),
			core.IntExpFlag("slots", 1200, "MAC slots to run", func(c *core.ExpConfig, v int) { c.Slots = v }),
			core.Int64ExpFlag("seed", 1, "jitter schedule seed", func(c *core.ExpConfig, v int64) { c.Seed = v }),
		},
		runTraceLatExperiment)
}

// runCitySimExperiment maps the shared knob set onto the city-scale
// experiment's config.
func runCitySimExperiment(cfg core.ExpConfig) (any, error) {
	csc := CitySimConfig{
		Cells:       cfg.Cells,
		UEsPerCell:  cfg.UEsPerCell,
		Sectors:     cfg.Sectors,
		Slots:       cfg.Slots,
		RICShards:   cfg.Shards,
		BatchWindow: cfg.BatchWindow,
		Seed:        cfg.Seed,
		Obs:         cfg.Obs,
	}
	if cfg.Overload != 0 {
		csc.Overload = &OverloadConfig{}
	}
	return RunCitySim(csc)
}

// runOverloadExperiment maps the shared knob set onto the overload chaos
// experiment's config.
func runOverloadExperiment(cfg core.ExpConfig) (any, error) {
	return RunOverload(OverloadExpConfig{
		Agents:     cfg.Agents,
		Shards:     cfg.Shards,
		AdmitRate:  cfg.AdmitRate,
		AdmitBurst: cfg.AdmitBurst,
		Outage:     cfg.Outage,
		Dwell:      cfg.Dwell,
		StallIters: cfg.StallIters,
		Seed:       cfg.Seed,
		Obs:        cfg.Obs,
		Flight:     cfg.Flight != 0,
		FlightDir:  cfg.FlightDir,
	})
}

// runFlightRecExperiment maps the shared knob set onto the flight-recorder
// experiment's config.
func runFlightRecExperiment(cfg core.ExpConfig) (any, error) {
	return RunFlightRec(FlightRecConfig{
		Agents:        cfg.Agents,
		StallIters:    cfg.StallIters,
		Dwell:         cfg.Dwell,
		OverheadSlots: cfg.Slots,
		Seed:          cfg.Seed,
		Dir:           cfg.FlightDir,
		Obs:           cfg.Obs,
	})
}

// runTraceLatExperiment maps the shared knob set onto the tracing
// experiment's config.
func runTraceLatExperiment(cfg core.ExpConfig) (any, error) {
	return RunTraceLat(TraceLatConfig{
		Cells: cfg.Cells,
		Slots: cfg.Slots,
		Seed:  cfg.Seed,
		Obs:   cfg.Obs,
	})
}

// runE2FaultsExperiment builds the experiment's standard gNB — one tenant
// slice on the round-robin plugin with a deliberately over-ambitious SLA,
// so the SLA-assurance xApp keeps emitting controls and control delivery
// after recovery is observable — and runs the fault storm against it.
func runE2FaultsExperiment(cfg core.ExpConfig) (any, error) {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		return nil, err
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		return nil, err
	}
	if _, err := gnb.Slices.AddSlice(1, "tenant", 100e6, rr, nil); err != nil {
		return nil, err
	}
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(3e6)
	if err := gnb.AttachUE(ue); err != nil {
		return nil, err
	}

	return RunE2Faults(E2FaultsConfig{
		Slots:            cfg.Slots,
		Drop:             cfg.Drop,
		ResetAfterWrites: cfg.ResetAfterWrites,
		Seed:             cfg.Seed,
		Heartbeat:        cfg.Heartbeat,
		Obs:              cfg.Obs,
	}, gnb, func(uint64) { gnb.Step() })
}

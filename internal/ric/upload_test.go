package ric

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/wabi"
	"waran/internal/wasm"
	"waran/internal/wat"
)

// greedyFirstWAT is a trivial third-party scheduler: grant the entire
// budget to the first UE in the request. Distinct from every built-in
// policy so the test can prove the uploaded bytecode is what runs.
const greedyFirstWAT = `(module
  (import "waran" "input_length" (func $input_length (result i32)))
  (import "waran" "input_read"   (func $input_read (param i32 i32 i32) (result i32)))
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "schedule") (result i32)
    (local $n i32) (local $budget i32) (local $need i64) (local $per i64) (local $g i32)
    (local.set $n (call $input_length))
    (drop (call $input_read (i32.const 1024) (i32.const 0) (local.get $n)))
    (local.set $budget (i32.load (i32.const 1036)))
    (if (i32.eqz (i32.load (i32.const 1040)))  ;; no UEs
      (then
        (i32.store (i32.const 0) (i32.const 0))
        (call $output_write (i32.const 0) (i32.const 4))
        (return (i32.const 0))))
    ;; Cap the grant at the first UE's need so it stays valid.
    (local.set $per (i64.extend_i32_u (i32.load (i32.const 1052))))
    (if (i64.eqz (local.get $per))
      (then (local.set $g (i32.const 0)))
      (else
        (local.set $need
          (i64.div_u
            (i64.sub
              (i64.add
                (i64.mul (i64.extend_i32_u (i32.load (i32.const 1056))) (i64.const 8))
                (local.get $per))
              (i64.const 1))
            (local.get $per)))
        (local.set $g (i32.wrap_i64 (local.get $need)))
        (if (i32.gt_u (local.get $g) (local.get $budget))
          (then (local.set $g (local.get $budget))))))
    (if (result i32) (i32.eqz (local.get $g))
      (then
        (i32.store (i32.const 0) (i32.const 0))
        (call $output_write (i32.const 0) (i32.const 4))
        (i32.const 0))
      (else
        (i32.store (i32.const 0) (i32.const 1))
        (i32.store (i32.const 4) (i32.load (i32.const 1044))) ;; first UE id
        (i32.store (i32.const 8) (local.get $g))
        (call $output_write (i32.const 0) (i32.const 12))
        (i32.const 0))))
)`

// TestBytecodeUploadOverE2 pushes a brand-new scheduler, compiled to Wasm
// bytecode, through the E2-lite association into a live gNB — the paper's
// Fig. 1 deployment flow — and verifies the slice now runs it.
func TestBytecodeUploadOverE2(t *testing.T) {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := gnb.Slices.AddSlice(1, "tenant", 10e6, rr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		ue := ran.NewUE(uint32(i), 1, 24)
		ue.Traffic = ran.NewCBR(6e6)
		if err := gnb.AttachUE(ue); err != nil {
			t.Fatal(err)
		}
	}

	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	var wg sync.WaitGroup
	var serverConn *e2.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		serverConn = c
	}()
	gnbConn, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer gnbConn.Close()
	wg.Wait()
	defer serverConn.Close()

	agent, err := NewAgent(gnbConn, gnb, AgentConfig{Cell: 1})
	if err != nil {
		t.Fatal(err)
	}
	// "RIC side": subscribe so the agent enters its control loop.
	if err := serverConn.Send(&e2.Message{
		Type: e2.TypeSubscriptionRequest, RequestID: 1,
		Subscription: &e2.SubscriptionRequest{ReportPeriodMs: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	agentDone, err := agent.Start()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := serverConn.Recv(); err != nil || m.Type != e2.TypeSubscriptionResponse {
		t.Fatalf("handshake: %v %v", m, err)
	}

	// Compile the third-party scheduler to bytecode and push it.
	blob, err := wat.CompileToBinary(greedyFirstWAT)
	if err != nil {
		t.Fatal(err)
	}
	if err := serverConn.Send(&e2.Message{
		Type: e2.TypeControlRequest, RequestID: 2, RANFunction: e2.RANFunctionRC,
		Control: &e2.ControlRequest{
			Action:  e2.ActionUploadScheduler,
			SliceID: 1,
			Text:    "greedy-first-v1",
			Blob:    blob,
		},
	}); err != nil {
		t.Fatal(err)
	}
	ack, err := serverConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != e2.TypeControlAck || !ack.ControlAck.Accepted {
		t.Fatalf("upload refused: %+v", ack.ControlAck)
	}
	if got := s.SchedulerName(); got != "plugin:greedy-first-v1" {
		t.Fatalf("active scheduler = %q", got)
	}

	// Prove the uploaded policy is live: only UE 1 (first in the request)
	// gets grants from now on.
	gnb.RunSlots(200, nil)
	ue1, _ := gnb.UE(1)
	ue2, _ := gnb.UE(2)
	if ue1.DeliveredBits == 0 {
		t.Fatal("uploaded scheduler served nothing")
	}
	if ue2.DeliveredBits > ue1.DeliveredBits/10 {
		t.Fatalf("uploaded greedy policy not in effect: ue1=%d ue2=%d",
			ue1.DeliveredBits, ue2.DeliveredBits)
	}

	// Garbage bytecode is rejected with a negative ack, gNB unharmed.
	if err := serverConn.Send(&e2.Message{
		Type: e2.TypeControlRequest, RequestID: 3, RANFunction: e2.RANFunctionRC,
		Control: &e2.ControlRequest{
			Action: e2.ActionUploadScheduler, SliceID: 1, Blob: []byte("not wasm"),
		},
	}); err != nil {
		t.Fatal(err)
	}
	ack, err = serverConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.ControlAck.Accepted {
		t.Fatal("garbage bytecode accepted")
	}
	if got := s.SchedulerName(); got != "plugin:greedy-first-v1" {
		t.Fatalf("scheduler changed after rejected upload: %q", got)
	}

	gnbConn.Close()
	select {
	case <-agentDone:
	case <-time.After(2 * time.Second):
		t.Fatal("agent did not shut down")
	}
}

// TestControlBlobRoundTripsAllCodecs ensures the bytecode payload survives
// every codec.
func TestControlBlobRoundTripsAllCodecs(t *testing.T) {
	blob := []byte{0x00, 0x61, 0x73, 0x6D, 1, 2, 3, 0xFF, 0}
	msg := &e2.Message{
		Type: e2.TypeControlRequest, RequestID: 1,
		Control: &e2.ControlRequest{
			Action: e2.ActionUploadScheduler, SliceID: 2, Text: "v2", Blob: blob,
		},
	}
	sealed, err := e2.NewSealedCodec(e2.BinaryCodec{}, "k")
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []e2.Codec{e2.BinaryCodec{}, e2.VarintCodec{}, e2.JSONCodec{}, sealed} {
		wire, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		got, err := codec.Decode(wire)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if !reflect.DeepEqual(got.Control, msg.Control) {
			t.Fatalf("%s: blob lost: %+v", codec.Name(), got.Control)
		}
	}
}

// TestAddXAppBytecodeUsesModuleCache: the operator upload path resolves
// identical bytecode through the RIC's content-addressed cache, so
// installing the same blob under many names compiles it once — and bad
// bytecode is rejected without poisoning the cache.
func TestAddXAppBytecodeUsesModuleCache(t *testing.T) {
	r := MustNew(Config{})
	blob, err := wat.CompileToBinary(plugins.TrafficSteerXAppWAT)
	if err != nil {
		t.Fatal(err)
	}
	before := wasm.CompileCount()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("steer-%d", i)
		if _, err := r.AddXAppBytecode(name, append([]byte(nil), blob...), wabi.Policy{}); err != nil {
			t.Fatalf("install %s: %v", name, err)
		}
	}
	if got := wasm.CompileCount() - before; got != 1 {
		t.Fatalf("4 uploads of identical bytecode compiled %d times, want 1", got)
	}
	if st := r.Modules.Stats(); st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 3/1", st.Hits, st.Misses)
	}
	if _, err := r.AddXAppBytecode("bad", []byte{1, 2, 3}, wabi.Policy{}); err == nil {
		t.Fatal("garbage bytecode accepted as xApp")
	}
	if r.Modules.Contains([]byte{1, 2, 3}) {
		t.Fatal("failed compile cached")
	}
}

package ric

// The flight-recorder experiment (waranbench -fig flightrec): replay a
// seeded overload + plugin-fault storm against a flight-armed RIC and
// verify the three promises DESIGN.md §18 makes:
//
//  1. causal chain — the anomaly-triggered diagnostic bundles collectively
//     contain the storm's full causal chain as journal events: the brownout
//     shift, the shed ledger entries around it, and the slow xApp's breaker
//     trip, in seq order;
//  2. trigger pipeline — at least one bundle was captured by an anomaly
//     trigger (not the final sweep), proving detectors and trigger classes
//     actually page the capturer;
//  3. overhead — an idle recorder attached to a clean slot loop costs
//     nothing measurable: journal writes happen only on rare edges, so the
//     steady-state slot path is unchanged within noise.

import (
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/obs"
	"waran/internal/obs/flight"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/wabi"
)

// FlightRecConfig parameterizes the flight-recorder experiment.
type FlightRecConfig struct {
	// Agents is the reporting fleet size (default 16).
	Agents int
	// QueueDepth bounds each association's indication queue (default 4 —
	// deliberately shallow so the stall overflows into the shed ledger
	// within milliseconds).
	QueueDepth int
	// StallIters is the slow xApp's spin length per dispatch (default
	// 400_000 — far past the dispatch deadline at interpreter speed).
	StallIters int
	// XAppDeadline is the per-dispatch wall-clock bound (default 2 ms).
	XAppDeadline time.Duration
	// Dwell is the storm window (default 1.5 s).
	Dwell time.Duration
	// Pacing is the simulated slot interval (default 1 ms).
	Pacing time.Duration
	// OverheadSlots sizes the journal-overhead measurement loops (default
	// 2000 slots per arm).
	OverheadSlots int
	// Seed selects the (deterministic) storm schedule (default 1).
	Seed int64
	// Dir is where diagnostic bundles land (empty = temp dir).
	Dir string
	// Obs, when non-nil, receives the RIC's and recorder's instruments and
	// the result embeds its snapshot.
	Obs *obs.Registry
}

func (c FlightRecConfig) withDefaults() FlightRecConfig {
	if c.Agents <= 0 {
		c.Agents = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	if c.StallIters <= 0 {
		c.StallIters = 400_000
	}
	if c.XAppDeadline <= 0 {
		c.XAppDeadline = 2 * time.Millisecond
	}
	if c.Dwell <= 0 {
		c.Dwell = 1500 * time.Millisecond
	}
	if c.Pacing <= 0 {
		c.Pacing = time.Millisecond
	}
	if c.OverheadSlots <= 0 {
		c.OverheadSlots = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FlightRecResult is the flight-recorder experiment's report.
type FlightRecResult struct {
	Agents int `json:"agents"`

	// Flight is the journal digest: per-class event counts, the on-disk
	// bundle index, and coverage of the causal-chain classes across them.
	Flight *flight.Summary `json:"flight"`
	// Detectors is the final state of every SLO burn-rate detector.
	Detectors []flight.DetectorState `json:"detectors"`

	// CausalChain reports that the captured bundles collectively contain
	// the storm's causal chain — brownout shift, shed entries, breaker
	// open — as journal events.
	CausalChain bool `json:"causal_chain"`
	// TriggeredBundles counts bundles captured by an anomaly trigger
	// (reason "class:..."), as opposed to the final sweep.
	TriggeredBundles int `json:"triggered_bundles"`
	// DetectorFires counts slo.detector_fire events in the journal.
	DetectorFires uint64 `json:"detector_fires"`

	// Ledger is the RIC's quiescent overload snapshot; LedgerConserved is
	// the exact conservation check on it.
	Ledger          OverloadStats `json:"ledger"`
	LedgerConserved bool          `json:"ledger_conserved"`

	// BaselineNsPerSlot / FlightNsPerSlot time a clean single-cell slot
	// loop without and with an attached (idle) recorder; OverheadPct is
	// the relative difference. Clean slots journal nothing, so this must
	// stay within measurement noise.
	BaselineNsPerSlot float64 `json:"baseline_ns_per_slot"`
	FlightNsPerSlot   float64 `json:"flight_ns_per_slot"`
	OverheadPct       float64 `json:"overhead_pct"`

	Obs map[string]any `json:"obs,omitempty"`
}

// flightrecChain is the causal chain the storm must leave in the bundles.
var flightrecChain = []flight.Class{flight.EvBrownoutShift, flight.EvShed, flight.EvBreakerOpen}

// RunFlightRec runs the flight-recorder experiment. A non-nil error flags a
// hard invariant violation (no causal chain in the bundles, ledger
// imbalance, pathological journal overhead); the partial result is still
// returned for inspection.
func RunFlightRec(cfg FlightRecConfig) (*FlightRecResult, error) {
	cfg = cfg.withDefaults()
	res := &FlightRecResult{Agents: cfg.Agents}

	rec := flight.NewRecorder(4096)
	if cfg.Obs != nil {
		rec.Register(cfg.Obs)
	}

	// The storm RIC: shallow queues so the saturated dispatch overflows
	// into the shed ledger, a tight dispatch deadline with a low-sample
	// breaker so the stuck xApp trips before the consecutive-fault
	// quarantine disables it (backoff past the dwell keeps half-open
	// probes — and their faults — out of the run), and a tight loop budget
	// + fast poll so the brownout controller reacts inside the dwell.
	r, err := New(Config{
		ReportPeriodMs: 1,
		Shards:         2,
		KPMHistory:     NoKPMHistory,
		Flight:         rec,
		Overload: &OverloadConfig{
			AdmitRate:     -1,
			BusyPause:     -1,
			QueueDepth:    cfg.QueueDepth,
			StaleAfter:    50 * time.Millisecond,
			XAppDeadline:  cfg.XAppDeadline,
			LoopP99Budget: 300 * time.Microsecond,
			Poll:          5 * time.Millisecond,
			Breaker: guard.BreakerConfig{
				Window: 64, MinSamples: 2, FailureRate: 0.5,
				Backoff: cfg.Dwell + time.Second,
			},
		},
	})
	if err != nil {
		return res, err
	}
	if cfg.Obs != nil {
		r.Register(cfg.Obs)
	}

	// The shed-ratio SLO burns against the RIC's own overload ledger; the
	// multi-window detector fires once both the 250 ms and 750 ms windows
	// burn past threshold, journaling slo.detector_fire — itself a bundle
	// trigger.
	fdet := flight.NewDetectorSet(rec)
	fdet.MustAdd(flight.SLO{
		Name:      "shed-ratio",
		Objective: 0.01,
		Bad: func() uint64 {
			s, _ := r.OverloadStats()
			return s.ShedOverflow + s.ShedStale + s.ShedTeardown + s.RefusedLate
		},
		Total: func() uint64 {
			s, _ := r.OverloadStats()
			return s.Offered
		},
	}, flight.DetectorConfig{Short: 250 * time.Millisecond, Long: 750 * time.Millisecond, Burn: 2})

	rec.SetTriggers(flight.EvBrownoutShift, flight.EvBreakerOpen, flight.EvDetectorFire)
	dir := cfg.Dir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "waran-flight-"); err != nil {
			return res, err
		}
	}
	fcap, err := flight.NewCapturer(rec, flight.CapturerConfig{
		Dir: dir, Debounce: 150 * time.Millisecond, GoroutineDump: -1,
		Registry: cfg.Obs, Detectors: fdet,
	})
	if err != nil {
		return res, err
	}
	fstop := make(chan struct{})
	go fcap.Run(fstop)
	go fdet.Run(fstop, 50*time.Millisecond)

	// Two bad xApps, one failure mode each. "stuck" inherits the dispatch
	// deadline, so its stall traps with FailDeadline and the low-sample
	// breaker opens on the second fault — one sample short of the
	// consecutive-fault quarantine, so the trip is journaled rather than
	// the xApp silently disabled. "lag" carries its own generous
	// CallTimeout, so the same stall *succeeds*: the breaker stays closed
	// and every dispatch keeps paying the stall for the whole dwell, which
	// is what saturates dispatch and overflows the shallow queues into the
	// shed ledger.
	slowSrc := fmt.Sprintf(slowXAppWATTemplate, cfg.StallIters)
	if _, err := r.AddXAppWAT("stuck", slowSrc, wabi.Policy{Fuel: 1 << 30}); err != nil {
		close(fstop)
		return res, err
	}
	if _, err := r.AddXAppWAT("lag", slowSrc, wabi.Policy{Fuel: 1 << 30, CallTimeout: 250 * time.Millisecond}); err != nil {
		close(fstop)
		return res, err
	}
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		close(fstop)
		return res, err
	}

	if err := flightrecStorm(cfg, r, rec); err != nil {
		close(fstop)
		return res, err
	}
	close(fstop)

	res.Ledger, _ = r.OverloadStats()
	res.LedgerConserved = ledgerConserved(res.Ledger)
	fdet.Eval(time.Now())
	res.Detectors = fdet.States()
	res.DetectorFires = rec.Count(flight.EvDetectorFire)

	// Sweep the journal tail into a final bundle (events inside the last
	// debounce window land here), then verify the chain across the bundle
	// sequence — consecutive bundles carry disjoint journal windows, so the
	// union is exactly what an operator pulling the bundle directory sees.
	if _, err := fcap.CaptureNow("flightrec-final"); err != nil {
		return res, err
	}
	sum, ok, err := flight.Summarize(rec, fcap, flightrecChain...)
	if err != nil {
		return res, err
	}
	res.Flight = sum
	res.CausalChain = ok
	for _, info := range sum.Bundles {
		if strings.HasPrefix(info.Reason, "class:") {
			res.TriggeredBundles++
		}
	}

	// Journal overhead: a clean slot loop with an idle recorder attached
	// must cost the same as one with no recorder — the disabled/idle paths
	// are a pointer compare and journal writes happen only on rare edges.
	// The storm leaves GC and scheduler residue behind, so each arm runs
	// twice, interleaved, and keeps its minimum: transient inflation hits
	// one pass, not the best-of.
	res.BaselineNsPerSlot, res.FlightNsPerSlot = math.Inf(1), math.Inf(1)
	for pass := 0; pass < 2; pass++ {
		ns, err := flightrecSlotNs(nil, cfg.OverheadSlots)
		if err != nil {
			return res, err
		}
		res.BaselineNsPerSlot = math.Min(res.BaselineNsPerSlot, ns)
		if ns, err = flightrecSlotNs(flight.NewRecorder(4096), cfg.OverheadSlots); err != nil {
			return res, err
		}
		res.FlightNsPerSlot = math.Min(res.FlightNsPerSlot, ns)
	}
	if res.BaselineNsPerSlot > 0 {
		res.OverheadPct = (res.FlightNsPerSlot - res.BaselineNsPerSlot) / res.BaselineNsPerSlot * 100
	}

	if cfg.Obs != nil {
		res.Obs = cfg.Obs.Snapshot()
	}

	if !res.CausalChain {
		return res, fmt.Errorf("ric: flightrec: bundles in %s do not cover the causal chain %v (coverage %v)",
			dir, flightrecChain, sum.Coverage)
	}
	if res.TriggeredBundles == 0 {
		return res, fmt.Errorf("ric: flightrec: no bundle was captured by an anomaly trigger")
	}
	if !res.LedgerConserved {
		return res, fmt.Errorf("ric: flightrec: shed ledger violated: %+v", res.Ledger)
	}
	// The bound is deliberately generous: this guards against a pathology
	// (journaling on the clean path), not against scheduler noise.
	if res.OverheadPct > 50 {
		return res, fmt.Errorf("ric: flightrec: idle journal overhead %.1f%% on the clean slot path", res.OverheadPct)
	}
	return res, nil
}

// flightrecStorm drives the reporting fleet against the flight-armed RIC
// for the dwell window, then quiesces it.
func flightrecStorm(cfg FlightRecConfig, r *RIC, rec *flight.Recorder) error {
	ran := &overloadRAN{}
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		return err
	}
	lis.SetFlightRecorder(rec)
	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- r.Serve(lis, stop) }()

	agents := make([]*Agent, 0, cfg.Agents)
	conns := make([]*e2.Conn, 0, cfg.Agents)
	defer func() {
		close(stop)
		for _, c := range conns {
			c.Close()
		}
		<-serveDone
	}()
	for i := 0; i < cfg.Agents; i++ {
		conn, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
		if err != nil {
			return err
		}
		conns = append(conns, conn)
		a, err := NewAgent(conn, ran, AgentConfig{Cell: uint32(i)})
		if err != nil {
			return err
		}
		if _, err := a.Start(); err != nil {
			return err
		}
		agents = append(agents, a)
	}

	end := time.Now().Add(cfg.Dwell)
	for slot := uint64(1); time.Now().Before(end); slot++ {
		for _, a := range agents {
			_ = a.Tick(slot)
		}
		time.Sleep(cfg.Pacing)
	}
	return nil
}

// flightrecSlotNs times a clean single-cell slot loop (native round-robin
// scheduler, one CBR UE) with the given recorder attached (nil = detached)
// and returns nanoseconds per slot.
func flightrecSlotNs(rec *flight.Recorder, slots int) (float64, error) {
	cg, err := core.NewCellGroup(ran.CellConfig{}, core.CellGroupConfig{Cells: 1})
	if err != nil {
		return 0, err
	}
	gnb := cg.Cell(0)
	if _, err := gnb.Slices.AddSlice(1, "tenant", 50e6, sched.RoundRobin{}, nil); err != nil {
		return 0, err
	}
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(3e6)
	if err := gnb.AttachUE(ue); err != nil {
		return 0, err
	}
	cg.SetFlightRecorder(rec)
	for i := 0; i < 100; i++ { // warm pools and caches off the clock
		cg.StepAll()
	}
	start := time.Now()
	for i := 0; i < slots; i++ {
		cg.StepAll()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(slots), nil
}

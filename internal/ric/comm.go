package ric

import (
	"fmt"
	"sync"

	"waran/internal/e2"
	"waran/internal/wabi"
)

// PluginCodec is an e2.Codec whose wire format is produced by a Wasm
// communication plugin: the host encodes a message with the inner codec and
// the plugin transforms it to the vendor's wire representation ("encode");
// incoming frames are transformed back ("decode") before the inner codec
// parses them.
//
// This is the paper's communication-plugin seam: a system integrator ships
// a shim (e.g. plugins.Widen8To12CommWAT) to adapt vendor A's frames to
// vendor B's field widths without changing either vendor's stack.
type PluginCodec struct {
	name  string
	inner e2.Codec

	// callMu serializes sandbox invocations: e2.Conn.Send is documented
	// safe for concurrent use (heartbeats and control pushes come from
	// different goroutines) and Send/Recv run concurrently, but a plugin
	// instance is single-threaded — unsynchronized Calls race on its
	// linear memory and I/O buffers.
	callMu sync.Mutex
	plugin *wabi.Plugin
}

// NewPluginCodec wraps inner with the plugin's encode/decode transforms.
// The plugin must export "encode" and "decode" with the wabi entry
// signature.
func NewPluginCodec(name string, inner e2.Codec, plugin *wabi.Plugin) (*PluginCodec, error) {
	if inner == nil {
		inner = e2.BinaryCodec{}
	}
	for _, entry := range []string{"encode", "decode"} {
		if !plugin.HasEntry(entry) {
			return nil, fmt.Errorf("ric: communication plugin %q does not export %q", name, entry)
		}
	}
	return &PluginCodec{name: name, inner: inner, plugin: plugin}, nil
}

// NewPluginCodecWAT compiles a communication plugin from WAT and wraps
// inner with it.
func NewPluginCodecWAT(name, src string, inner e2.Codec) (*PluginCodec, error) {
	mod, err := wabi.CompileWAT(src)
	if err != nil {
		return nil, fmt.Errorf("ric: compile communication plugin %q: %w", name, err)
	}
	plugin, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 50_000_000}, wabi.Env{})
	if err != nil {
		return nil, err
	}
	return NewPluginCodec(name, inner, plugin)
}

// Name implements e2.Codec.
func (p *PluginCodec) Name() string { return p.inner.Name() + "+plugin:" + p.name }

// Encode implements e2.Codec.
func (p *PluginCodec) Encode(m *e2.Message) ([]byte, error) {
	host, err := p.inner.Encode(m)
	if err != nil {
		return nil, err
	}
	p.callMu.Lock()
	wire, err := p.plugin.Call("encode", host)
	p.callMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("ric: communication plugin %q encode: %w", p.name, err)
	}
	return wire, nil
}

// Decode implements e2.Codec.
func (p *PluginCodec) Decode(b []byte) (*e2.Message, error) {
	p.callMu.Lock()
	host, err := p.plugin.Call("decode", b)
	p.callMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("ric: communication plugin %q decode: %w", p.name, err)
	}
	return p.inner.Decode(host)
}

package ric

import (
	"errors"
	"testing"
	"time"

	"waran/internal/e2"
)

func fillStore(store *KPMStore, n int, served float64) {
	for i := 0; i < n; i++ {
		store.Record(time.Now(), &e2.Indication{
			Cell: 1, Slot: uint64(i),
			Slices: []e2.SliceMeasurement{{SliceID: 5, TargetBps: 10e6, ServedBps: served}},
		})
	}
}

func TestSLATunerBoostsUnderachiever(t *testing.T) {
	store := NewKPMStore(0)
	fillStore(store, 20, 4e6) // persistently at 40% of target

	var got []e2.ControlRequest
	n := NewNonRTRIC(store, func(c e2.ControlRequest) error {
		got = append(got, c)
		return nil
	})
	n.AddRApp(&SLATuner{})
	emitted, err := n.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || len(got) != 1 {
		t.Fatalf("emitted %d guidance actions: %v", emitted, got)
	}
	c := got[0]
	if c.Action != e2.ActionSetSliceWeight || c.SliceID != 5 || c.Value != 2.0 {
		t.Fatalf("guidance = %+v", c)
	}
	// Unchanged situation: no duplicate guidance.
	if emitted, _ := n.RunOnce(); emitted != 0 {
		t.Fatalf("duplicate guidance emitted: %d", emitted)
	}
	// Recovery: compliance returns, weight relaxes to 1.0.
	fillStore(store, 30, 9.8e6)
	got = nil
	if emitted, _ := n.RunOnce(); emitted != 1 || got[0].Value != 1.0 {
		t.Fatalf("relaxation guidance = %d %v", emitted, got)
	}
	rounds, totalEmitted, faults := n.Counters()
	if rounds != 3 || totalEmitted != 2 || faults != 0 {
		t.Fatalf("counters = %d/%d/%d", rounds, totalEmitted, faults)
	}
}

func TestSLATunerNeedsEvidence(t *testing.T) {
	store := NewKPMStore(0)
	fillStore(store, 3, 1e6) // too few samples for a 20-window
	n := NewNonRTRIC(store, func(e2.ControlRequest) error { return nil })
	n.AddRApp(&SLATuner{})
	if emitted, _ := n.RunOnce(); emitted != 0 {
		t.Fatalf("guidance from insufficient history: %d", emitted)
	}
}

func TestNonRTRICSinkFaultsCounted(t *testing.T) {
	store := NewKPMStore(0)
	fillStore(store, 20, 1e6)
	n := NewNonRTRIC(store, func(e2.ControlRequest) error {
		return errors.New("gNB refused")
	})
	n.AddRApp(&SLATuner{})
	emitted, err := n.RunOnce()
	if emitted != 0 || err == nil {
		t.Fatalf("emitted=%d err=%v", emitted, err)
	}
	if _, _, faults := n.Counters(); faults != 1 {
		t.Fatalf("faults = %d", faults)
	}
}

func TestNonRTRICRunLoop(t *testing.T) {
	store := NewKPMStore(0)
	fillStore(store, 20, 1e6)
	var count int
	n := NewNonRTRIC(store, func(e2.ControlRequest) error {
		count++
		return nil
	})
	n.Interval = 5 * time.Millisecond
	n.AddRApp(&SLATuner{})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		n.Run(stop)
		close(done)
	}()
	time.Sleep(40 * time.Millisecond)
	close(stop)
	<-done
	rounds, _, _ := n.Counters()
	if rounds == 0 {
		t.Fatal("run loop never ticked")
	}
	if count != 1 {
		t.Fatalf("guidance delivered %d times, want 1 (dedup)", count)
	}
}

// TestClosedLoopRAppRetunesGNB runs the full non-RT loop in process: gNB
// history flows into the KPM store; the SLA tuner's guidance is applied
// back to the gNB.
func TestClosedLoopRAppRetunesGNB(t *testing.T) {
	store := NewKPMStore(0)
	// Simulate a slice persistently missing its SLA in the recorded KPMs.
	fillStore(store, 20, 2e6)

	applied := map[uint32]float64{}
	n := NewNonRTRIC(store, func(c e2.ControlRequest) error {
		if c.Action != e2.ActionSetSliceWeight {
			return errors.New("unexpected action")
		}
		applied[c.SliceID] = c.Value
		return nil
	})
	n.AddRApp(&SLATuner{})
	if _, err := n.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if applied[5] != 2.0 {
		t.Fatalf("weights applied = %v", applied)
	}
}

package ric

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waran/internal/e2"
	"waran/internal/guard"
	"waran/internal/plugins"
	"waran/internal/wabi"
)

// connPair returns the two ends of a loopback E2 connection.
func connPair(t *testing.T) (server, client *e2.Conn) {
	t.Helper()
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = c
	}()
	client, err = e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	t.Cleanup(func() {
		client.Close()
		if server != nil {
			server.Close()
		}
	})
	return server, client
}

func TestOverloadConfigValidate(t *testing.T) {
	bad := []OverloadConfig{
		{AdmitBurst: -1},
		{QueueDepth: -1},
		{WidenFactor: -1},
		{EnterDegraded: 1.5},
		{EnterCritical: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, c)
		}
	}
	if err := (OverloadConfig{}).Validate(); err != nil {
		t.Fatalf("zero OverloadConfig rejected: %v", err)
	}
	d := OverloadConfig{}.withDefaults()
	if d.AdmitRate != DefaultAdmitRate || d.QueueDepth != DefaultQueueDepth || d.WidenFactor != DefaultWidenFactor {
		t.Fatalf("withDefaults = %+v", d)
	}
	// Critical fill never below degraded fill.
	d = OverloadConfig{EnterDegraded: 0.8, EnterCritical: 0.3}.withDefaults()
	if d.EnterCritical < d.EnterDegraded {
		t.Fatalf("EnterCritical %v < EnterDegraded %v after defaults", d.EnterCritical, d.EnterDegraded)
	}
}

// TestAdmitAssocTokenBucket pins the admission gate: burst admits, then
// refusal with a retry-after no smaller than the configured hint, then
// refill at AdmitRate.
func TestAdmitAssocTokenBucket(t *testing.T) {
	cfg := OverloadConfig{AdmitRate: 2, AdmitBurst: 2, RetryAfter: 100 * time.Millisecond}.withDefaults()
	o := newOverload(cfg, 1, nil, nil)
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := o.admitAssoc(0, now); !ok {
			t.Fatalf("admission %d refused within burst", i)
		}
	}
	ok, wait := o.admitAssoc(0, now)
	if ok {
		t.Fatal("third admission accepted with an empty bucket")
	}
	if wait < 100*time.Millisecond {
		t.Fatalf("retry-after %v below the configured floor", wait)
	}
	// At 2 tokens/s, 600 ms refills more than one whole token.
	if ok, _ := o.admitAssoc(0, now.Add(600*time.Millisecond)); !ok {
		t.Fatal("admission refused after refill")
	}
	// A disabled gate admits everything.
	od := newOverload(OverloadConfig{AdmitRate: -1}.withDefaults(), 1, nil, nil)
	for i := 0; i < 1000; i++ {
		if ok, _ := od.admitAssoc(0, now); !ok {
			t.Fatal("disabled admission gate refused")
		}
	}
}

// TestBusyAdmissionRefusal verifies the wire path: an association past the
// admission budget gets TypeBusy with a retry-after hint and Agent.Start
// surfaces it as *e2.BusyError.
func TestBusyAdmissionRefusal(t *testing.T) {
	r := MustNew(Config{Shards: 1, Overload: &OverloadConfig{AdmitRate: 0.001, AdmitBurst: 1}})
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	stop := make(chan struct{})
	defer close(stop)
	go r.Serve(lis, stop)

	dial := func() *Agent {
		c, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		a, err := NewAgent(c, &fakeRAN{}, AgentConfig{Cell: 1})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if _, err := dial().Start(); err != nil {
		t.Fatalf("first association refused: %v", err)
	}
	_, err = dial().Start()
	busy, ok := err.(*e2.BusyError)
	if !ok {
		t.Fatalf("second association got %v, want *e2.BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("busy refusal carries no retry-after hint: %+v", busy)
	}
	st, _ := r.OverloadStats()
	if st.BusyAdmission != 1 {
		t.Fatalf("BusyAdmission = %d, want 1", st.BusyAdmission)
	}
}

// TestAcquireShardSpill is the unit half of the refusal-rehash fix: a full
// preferred shard spills the association onto any shard with spare budget
// instead of refusing while the RIC as a whole has room.
func TestAcquireShardSpill(t *testing.T) {
	r := MustNew(Config{Shards: 3, MaxAssocPerShard: 1, Overload: &OverloadConfig{}})
	preferred := r.shards[0]
	a, ok := r.acquireShard(preferred)
	if !ok || a != preferred {
		t.Fatalf("first acquire = (%v, %v), want preferred shard", a, ok)
	}
	b, ok := r.acquireShard(preferred)
	if !ok || b == preferred {
		t.Fatalf("second acquire = (%v, %v), want a spill onto another shard", b, ok)
	}
	c, ok := r.acquireShard(preferred)
	if !ok || c == preferred || c == b {
		t.Fatalf("third acquire = (%v, %v), want the last free shard", c, ok)
	}
	if _, ok := r.acquireShard(preferred); ok {
		t.Fatal("acquire succeeded with every shard full")
	}
	st, _ := r.OverloadStats()
	if st.Spills != 2 {
		t.Fatalf("Spills = %d, want 2", st.Spills)
	}

	// Without overload control the old semantics hold: full preferred shard
	// means refusal, no spill.
	r2 := MustNew(Config{Shards: 3, MaxAssocPerShard: 1})
	r2.shards[0].sem <- struct{}{}
	if _, ok := r2.acquireShard(r2.shards[0]); ok {
		t.Fatal("overload-off acquire spilled; want refusal")
	}
}

// TestSpillEventualPlacement is the e2e half: with one association slot per
// shard, as many associations as shards all land somewhere regardless of
// how the address hash distributes them, and the next one is refused busy.
func TestSpillEventualPlacement(t *testing.T) {
	const shards = 4
	r := MustNew(Config{Shards: shards, MaxAssocPerShard: 1, Overload: &OverloadConfig{}})
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	stop := make(chan struct{})
	defer close(stop)
	go r.Serve(lis, stop)

	for i := 0; i < shards; i++ {
		c, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("association %d: %v", i, err)
		}
		if m.Type != e2.TypeSubscriptionRequest {
			t.Fatalf("association %d admitted with %s, want subscription-request", i, m.Type)
		}
	}
	// Every slot is taken: one more association must be refused with busy.
	c, err := e2.Dial(lis.Addr().String(), e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != e2.TypeBusy {
		t.Fatalf("over-budget association got %s, want busy", m.Type)
	}
}

// TestBrownoutStateMachine drives maybeEval directly: escalation is
// immediate on fill thresholds, de-escalation takes two consecutive calm
// evals and steps one level at a time.
func TestBrownoutStateMachine(t *testing.T) {
	cfg := OverloadConfig{QueueDepth: 100, Poll: time.Millisecond, LoopP99Budget: -1}.withDefaults()
	o := newOverload(cfg, 1, nil, nil)
	base := time.Now()
	at := func(i int) time.Time { return base.Add(time.Duration(i) * 2 * time.Millisecond) }

	o.noteQueueLen(60) // fill 0.6 >= EnterDegraded 0.5
	o.maybeEval(at(1))
	if got := o.Level(); got != BrownoutDegraded {
		t.Fatalf("level after 0.6 fill = %v, want degraded", got)
	}
	o.noteQueueLen(95) // fill 0.95 >= EnterCritical 0.9
	o.maybeEval(at(2))
	if got := o.Level(); got != BrownoutCritical {
		t.Fatalf("level after 0.95 fill = %v, want critical", got)
	}
	// First calm eval: hysteresis holds the level.
	o.maybeEval(at(3))
	if got := o.Level(); got != BrownoutCritical {
		t.Fatalf("level after one calm eval = %v, want critical (hysteresis)", got)
	}
	// Second calm eval: one step down, not a jump to normal.
	o.maybeEval(at(4))
	if got := o.Level(); got != BrownoutDegraded {
		t.Fatalf("level after two calm evals = %v, want degraded (single step)", got)
	}
	o.maybeEval(at(5))
	o.maybeEval(at(6))
	if got := o.Level(); got != BrownoutNormal {
		t.Fatalf("level after recovery = %v, want normal", got)
	}
	if got := o.transitions.Value(); got != 4 {
		t.Fatalf("transitions = %d, want 4", got)
	}
	// The poll gate coalesces evals inside one interval.
	o.noteQueueLen(95)
	o.maybeEval(at(6)) // same instant as the last accepted eval
	if got := o.Level(); got != BrownoutNormal {
		t.Fatal("eval ran inside the poll interval")
	}
}

// TestBrownoutLatencyTrigger verifies the dispatch-p99 trigger escalates
// even with empty queues: a RIC that is slow is as browned out as one that
// is backlogged.
func TestBrownoutLatencyTrigger(t *testing.T) {
	cfg := OverloadConfig{QueueDepth: 100, Poll: time.Millisecond, LoopP99Budget: time.Millisecond}.withDefaults()
	o := newOverload(cfg, 1, nil, nil)
	for i := 0; i < 20; i++ {
		o.observeDispatch(5 * time.Millisecond) // p99 ~5ms > 2x budget
	}
	o.maybeEval(time.Now().Add(2 * time.Millisecond))
	if got := o.Level(); got != BrownoutCritical {
		t.Fatalf("level with p99 5ms against 1ms budget = %v, want critical", got)
	}
}

// TestShedLedgerConservation exercises every exit of the indication queue —
// delivery, overflow eviction, late refusal, teardown drain — and asserts
// the strict conservation invariant offered == delivered + shed + refused.
func TestShedLedgerConservation(t *testing.T) {
	r := MustNew(Config{Overload: &OverloadConfig{QueueDepth: 2}})
	server, _ := connPair(t)
	q := newAssocQueue(r.cfg.Overload.QueueDepth)
	mk := func(slot uint64) queuedInd {
		return queuedInd{ind: &e2.Indication{Slot: slot, Cell: 1}, enq: time.Now()}
	}
	// No dispatcher yet: depth 2 holds two, eight more evict the oldest.
	for s := uint64(0); s < 10; s++ {
		r.enqueueIndication(q, mk(s))
	}
	st, _ := r.OverloadStats()
	if st.Offered != 10 || st.ShedOverflow != 8 {
		t.Fatalf("after overflow: offered=%d shedOverflow=%d, want 10/8", st.Offered, st.ShedOverflow)
	}
	// Start the dispatcher: the two survivors are delivered.
	var busyCapable atomic.Bool
	go r.dispatchLoop(r.shards[0], server, q, &busyCapable)
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, _ = r.OverloadStats()
		if st.Delivered == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher never delivered the queued survivors: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(q.quit)
	<-q.done
	// An indication offered after teardown is refused, not lost.
	r.enqueueIndication(q, mk(99))
	st, _ = r.OverloadStats()
	if st.RefusedLate != 1 {
		t.Fatalf("RefusedLate = %d, want 1", st.RefusedLate)
	}
	if st.Offered != st.Delivered+st.ShedOverflow+st.ShedStale+st.ShedTeardown+st.RefusedLate {
		t.Fatalf("ledger violated: %+v", st)
	}

	// Teardown drain: residue left in a dying queue lands in the ledger.
	r2 := MustNew(Config{Overload: &OverloadConfig{QueueDepth: 8}})
	server2, _ := connPair(t)
	q2 := newAssocQueue(8)
	for s := uint64(0); s < 3; s++ {
		r2.enqueueIndication(q2, mk(s))
	}
	close(q2.quit)
	var bc2 atomic.Bool
	r2.dispatchLoop(r2.shards[0], server2, q2, &bc2) // returns after the drain
	st2, _ := r2.OverloadStats()
	if st2.Offered != 3 || st2.Delivered+st2.ShedTeardown != 3 {
		t.Fatalf("teardown ledger violated: %+v", st2)
	}
}

// TestBrownoutWidensShedsAndPauses walks one association through a forced
// brownout: the dispatcher re-subscribes at a widened period, sheds the
// stale indication, and sends a busy pause to the capable agent.
func TestBrownoutWidensShedsAndPauses(t *testing.T) {
	r := MustNew(Config{ReportPeriodMs: 100, Overload: &OverloadConfig{
		StaleAfter: time.Nanosecond, // every queued indication is stale once browned out
		BusyPause:  50 * time.Millisecond,
	}})
	server, client := connPair(t)
	stop := make(chan struct{})
	defer close(stop)
	done := make(chan error, 1)
	go func() { done <- r.ServeConn(server, stop) }()

	sub, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if sub.RANFunction&e2.BusyCapabilityBit == 0 {
		t.Fatal("overload-enabled RIC did not advertise busy capability")
	}
	err = client.Send(&e2.Message{
		Type: e2.TypeSubscriptionResponse, RequestID: sub.RequestID, RANFunction: sub.RANFunction,
		SubscriptionResp: &e2.SubscriptionResponse{
			Accepted: true,
			Reason:   e2.AppendCapabilityToken("", e2.OverloadCapabilityToken),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the recv loop a moment to store busyCapable, then force brownout.
	time.Sleep(20 * time.Millisecond)
	r.ov.level.Store(int32(BrownoutCritical))
	err = client.Send(&e2.Message{
		Type: e2.TypeIndication, RANFunction: e2.RANFunctionKPM,
		Indication: &e2.Indication{Slot: 1, Cell: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	var widened, paused bool
	deadline := time.Now().Add(2 * time.Second)
	for !(widened && paused) {
		_ = client.SetReadDeadline(deadline)
		m, err := client.Recv()
		if err != nil {
			t.Fatalf("widened=%v paused=%v: %v", widened, paused, err)
		}
		switch m.Type {
		case e2.TypeSubscriptionRequest:
			if m.Subscription.ReportPeriodMs != 100*DefaultWidenFactor {
				t.Fatalf("browned-out re-subscription period = %d, want %d",
					m.Subscription.ReportPeriodMs, 100*DefaultWidenFactor)
			}
			widened = true
		case e2.TypeBusy:
			if m.Busy.RetryAfter() != 50*time.Millisecond {
				t.Fatalf("busy pause hint = %v, want 50ms", m.Busy.RetryAfter())
			}
			paused = true
		}
	}
	st, _ := r.OverloadStats()
	if st.ShedStale != 1 || st.Delivered != 0 {
		t.Fatalf("stale shed not applied: %+v", st)
	}
	if st.BusyBackpressure == 0 {
		t.Fatalf("no busy backpressure frame counted: %+v", st)
	}
	if st.Offered != st.Delivered+st.ShedOverflow+st.ShedStale+st.ShedTeardown+st.RefusedLate {
		t.Fatalf("ledger violated: %+v", st)
	}
}

// TestCriticalBrownoutRefusesSubscriptions verifies the front door shuts at
// critical level: a new association is refused with TypeBusy before any
// budget or bucket is consulted.
func TestCriticalBrownoutRefusesSubscriptions(t *testing.T) {
	r := MustNew(Config{Overload: &OverloadConfig{}})
	r.ov.level.Store(int32(BrownoutCritical))
	server, client := connPair(t)
	stop := make(chan struct{})
	defer close(stop)
	if err := r.ServeConn(server, stop); err == nil {
		t.Fatal("ServeConn accepted an association at critical brownout")
	}
	m, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != e2.TypeBusy {
		t.Fatalf("refused association got %s, want busy", m.Type)
	}
	st, _ := r.OverloadStats()
	if st.RefusedSubscriptions != 1 {
		t.Fatalf("RefusedSubscriptions = %d, want 1", st.RefusedSubscriptions)
	}
}

// stallXAppWAT never returns; only the wall-clock dispatch deadline
// (Policy.CallTimeout, installed by the overload layer) can stop it.
const stallXAppWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "on_indication") (result i32)
    (loop $spin (br $spin))
    (i32.const 0))
)`

// TestSlowXAppIsolation pins the isolation contract: a stalled xApp is cut
// off at the dispatch deadline, trips its breaker open after MinSamples, and
// is then skipped at zero cost — while a healthy xApp keeps producing
// controls in every round.
func TestSlowXAppIsolation(t *testing.T) {
	deadlineBudget := 20 * time.Millisecond
	r := MustNew(Config{Overload: &OverloadConfig{
		XAppDeadline: deadlineBudget,
		Breaker:      guard.BreakerConfig{Window: 8, MinSamples: 2, FailureRate: 0.5, Backoff: time.Hour},
	}})
	// Huge fuel: only the installed CallTimeout can stop the spin.
	if _, err := r.AddXAppWAT("stall", stallXAppWAT, wabi.Policy{Fuel: 1 << 60}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddXAppWAT("steer", plugins.TrafficSteerXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}
	// MCS at the floor: the steering xApp emits a handover every round.
	ind := &e2.Indication{Cell: 1, UEs: []e2.UEMeasurement{{UEID: 7, SliceID: 1, MCS: 2}}}

	for i := 0; i < 5; i++ {
		start := time.Now()
		ctrls := r.HandleIndication(ind)
		elapsed := time.Since(start)
		if len(ctrls) == 0 {
			t.Fatalf("round %d: healthy xApp produced no control behind the stalled one", i)
		}
		if elapsed > deadlineBudget+100*time.Millisecond {
			t.Fatalf("round %d: dispatch took %v, stalled xApp exceeded its deadline budget", i, elapsed)
		}
	}
	stall, _ := r.XApp("stall")
	st := stall.Stats()
	if st.BreakerState != "open" {
		t.Fatalf("stalled xApp breaker state = %q, want open (stats %+v)", st.BreakerState, st)
	}
	if st.Skipped == 0 {
		t.Fatalf("stalled xApp was never skipped: %+v", st)
	}
	if stall.Disabled() {
		t.Fatal("quarantine fired; the breaker should govern before consecutive-fault quarantine")
	}
	// With the breaker open the stalled xApp costs nothing: the whole
	// dispatch is far under the deadline budget.
	start := time.Now()
	if ctrls := r.HandleIndication(ind); len(ctrls) == 0 {
		t.Fatal("healthy xApp stopped producing after breaker opened")
	}
	if elapsed := time.Since(start); elapsed > deadlineBudget {
		t.Fatalf("open-breaker dispatch took %v, want well under the %v deadline", elapsed, deadlineBudget)
	}
}

// TestAgentPausesOnBusyFrame verifies mid-association backpressure: a busy
// frame pauses KPM generation at the source for its retry-after, sheds are
// counted, and reporting resumes when the pause expires.
func TestAgentPausesOnBusyFrame(t *testing.T) {
	ricEnd, agent, _ := agentPair(t)
	err := ricEnd.Send(&e2.Message{
		Type: e2.TypeSubscriptionRequest, RequestID: 1,
		RANFunction:  e2.RANFunctionKPM | e2.BusyCapabilityBit,
		Subscription: &e2.SubscriptionRequest{ReportPeriodMs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	ack, err := ricEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !e2.HasCapabilityToken(ack.SubscriptionResp.Reason, e2.OverloadCapabilityToken) {
		t.Fatalf("agent did not answer busy capability: %q", ack.SubscriptionResp.Reason)
	}

	if err := ricEnd.Send(e2.NewBusyMessage(80*time.Millisecond, "test pause")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !agent.Paused() {
		if time.Now().After(deadline) {
			t.Fatal("agent never entered the busy pause")
		}
		time.Sleep(time.Millisecond)
	}
	// Due slots during the pause are shed at the source.
	for slot := uint64(1); slot <= 2; slot++ {
		if err := agent.Tick(slot); err != nil {
			t.Fatal(err)
		}
	}
	bf, ps, _ := agent.OverloadCounters()
	if bf != 1 || ps != 2 {
		t.Fatalf("busyFrames=%d pausedSheds=%d, want 1/2", bf, ps)
	}
	// After the pause expires, reporting resumes.
	time.Sleep(100 * time.Millisecond)
	if err := agent.Tick(3); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		_ = ricEnd.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		m, err := ricEnd.Recv()
		if err != nil {
			break
		}
		if m.Type == e2.TypeIndication {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("received %d indications, want exactly 1 (paused ticks must not leak frames)", got)
	}
}

// TestAgentSessionHonorsBusyRetryAfter verifies the supervisor stretches its
// redial to the RIC's retry-after hint instead of hammering the (much
// shorter) backoff schedule.
func TestAgentSessionHonorsBusyRetryAfter(t *testing.T) {
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var mu sync.Mutex
	var accepts []time.Time
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			accepts = append(accepts, time.Now())
			mu.Unlock()
			_ = c.Send(e2.NewBusyMessage(200*time.Millisecond, "ric: admission"))
			c.Close()
		}
	}()

	am := &AssocMetrics{}
	sess, err := NewAgentSession(AgentSessionConfig{
		Dial:    func() (*e2.Conn, error) { return e2.Dial(lis.Addr().String(), e2.BinaryCodec{}) },
		RAN:     &fakeRAN{},
		Agent:   AgentConfig{Cell: 1},
		Backoff: Backoff{Initial: time.Millisecond, Max: 2 * time.Millisecond, FullJitter: true},
		Metrics: am,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(accepts)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("supervisor never retried enough")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sess.Stop()
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < 3; i++ {
		gap := accepts[i].Sub(accepts[i-1])
		// The hint is 200 ms, jittered into [100ms, 300ms); the plain backoff
		// would retry within ~2 ms. Anything under half the hint means the
		// hint was ignored.
		if gap < 100*time.Millisecond {
			t.Fatalf("redial gap %d = %v, want >= 100ms (retry-after hint ignored)", i, gap)
		}
	}
	if am.BusyRefusals.Value() < 2 {
		t.Fatalf("BusyRefusals = %d, want >= 2", am.BusyRefusals.Value())
	}
}

// TestFullJitterDesync pins the full-jitter schedule and the zero-seed
// desynchronization fix: zero-seeded sessions must not share a retry
// schedule (the alignment bug that turned 1024 reconnects into one wave).
func TestFullJitterDesync(t *testing.T) {
	b := Backoff{Initial: 100 * time.Millisecond, Max: time.Second, Factor: 2, FullJitter: true}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		d := b.FullJitterDelay(3, rng) // ceiling 800ms
		if d < 0 || d >= 800*time.Millisecond {
			t.Fatalf("FullJitterDelay(3) = %v, want in [0, 800ms)", d)
		}
	}
	// Ceiling caps at Max.
	if d := b.FullJitterDelay(10, nil); d != time.Second {
		t.Fatalf("un-jittered ceiling = %v, want 1s cap", d)
	}
	// delay() dispatches on the FullJitter flag.
	if d := b.delay(2, nil); d != b.FullJitterDelay(2, nil) {
		t.Fatalf("delay() = %v, want the full-jitter schedule", d)
	}
	bj := b
	bj.FullJitter = false
	if d := bj.delay(2, nil); d != bj.Delay(2, nil) {
		t.Fatalf("delay() = %v, want the legacy schedule", d)
	}

	// Zero-seed regression: every derived seed is unique...
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := deriveSeed(0)
		if seen[s] {
			t.Fatal("deriveSeed(0) repeated a seed")
		}
		seen[s] = true
	}
	// ...and two zero-seeded sessions draw different schedules.
	r1 := rand.New(rand.NewSource(deriveSeed(0)))
	r2 := rand.New(rand.NewSource(deriveSeed(0)))
	same := true
	for i := 0; i < 4; i++ {
		if b.FullJitterDelay(i, r1) != b.FullJitterDelay(i, r2) {
			same = false
		}
	}
	if same {
		t.Fatal("zero-seeded sessions share a retry schedule: the alignment bug is back")
	}
	// Explicit seeds stay deterministic for experiments.
	if deriveSeed(7) != 7 {
		t.Fatal("deriveSeed must pass explicit seeds through")
	}
}

// TestRenegotiationRaceFlushExactlyOnce races mid-window capability
// renegotiation (batch bit toggling on re-subscription) against Flush and
// asserts every buffered indication is delivered exactly once — as a batch
// frame or individually, but never duplicated, never silently lost.
func TestRenegotiationRaceFlushExactlyOnce(t *testing.T) {
	ricEnd, agent, _ := agentPair(t, AgentConfig{Cell: 1, Batch: BatchConfig{Window: 8, FlushInterval: time.Hour}})
	err := ricEnd.Send(&e2.Message{
		Type: e2.TypeSubscriptionRequest, RequestID: 1,
		RANFunction:  e2.RANFunctionKPM | e2.BatchCapabilityBit,
		Subscription: &e2.SubscriptionRequest{ReportPeriodMs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	if m, err := ricEnd.Recv(); err != nil || m.Type != e2.TypeSubscriptionResponse {
		t.Fatalf("handshake ack: %v/%v", m, err)
	}

	const perIter = 3
	slot := uint64(0)
	for iter := 0; iter < 25; iter++ {
		// Buffer (or, when batching was renegotiated away, send) three
		// due-slot indications.
		for k := 0; k < perIter; k++ {
			slot++
			if err := agent.Tick(slot); err != nil {
				t.Fatal(err)
			}
		}
		// Race a capability renegotiation against the flush: odd iterations
		// drop the batch bit mid-window, even ones restore it.
		fn := e2.RANFunctionKPM
		if iter%2 == 0 {
			fn |= e2.BatchCapabilityBit
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func(reqID uint32) {
			defer wg.Done()
			_ = ricEnd.Send(&e2.Message{
				Type: e2.TypeSubscriptionRequest, RequestID: reqID, RANFunction: fn,
				Subscription: &e2.SubscriptionRequest{ReportPeriodMs: 1},
			})
		}(uint32(iter + 2))
		if err := agent.Flush(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		// Drain until the re-subscription ack and exactly perIter
		// indications arrived; any duplicate would surface either here or as
		// a stray frame in a later iteration's count.
		got, acked := 0, false
		deadline := time.Now().Add(2 * time.Second)
		for got < perIter || !acked {
			_ = ricEnd.SetReadDeadline(deadline)
			m, err := ricEnd.Recv()
			if err != nil {
				t.Fatalf("iter %d: got %d/%d acked=%v: %v", iter, got, perIter, acked, err)
			}
			switch m.Type {
			case e2.TypeIndication:
				got++
			case e2.TypeIndicationBatch:
				got += len(m.Batch.Indications)
			case e2.TypeSubscriptionResponse:
				acked = true
			}
		}
		if got != perIter {
			t.Fatalf("iter %d: %d indications delivered, want exactly %d", iter, got, perIter)
		}
	}
	if pend := agent.PendingBatched(); pend != 0 {
		t.Fatalf("window residue %d after final flush", pend)
	}
	// Nothing extra in flight: a duplicated window would land here.
	_ = ricEnd.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if m, err := ricEnd.Recv(); err == nil && (m.Type == e2.TypeIndication || m.Type == e2.TypeIndicationBatch) {
		t.Fatalf("stray %s after all windows accounted", m.Type)
	}
}

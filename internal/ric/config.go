package ric

import (
	"fmt"
	"time"

	"waran/internal/e2"
	"waran/internal/obs/flight"
	"waran/internal/obs/trace"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

// DefaultShards is the association shard count when Config.Shards is zero:
// enough domains that a thousand associations spread their fan-in without
// contending, small enough that a single-association test still behaves
// exactly like the unsharded RIC did.
const DefaultShards = 8

// MaxShards bounds Config.Shards.
const MaxShards = 256

// DefaultMaxAssocPerShard is the per-shard association goroutine budget
// when Config.MaxAssocPerShard is zero.
const DefaultMaxAssocPerShard = 512

// NoKPMHistory disables the KPM store entirely (Config.KPMHistory): at
// thousands of associations the store's lock is measurable fan-in overhead
// a pure throughput deployment can refuse to pay.
const NoKPMHistory = -1

// DefaultBatchFlushInterval bounds how long a partial indication window may
// wait before it is flushed when BatchConfig.FlushInterval is zero.
const DefaultBatchFlushInterval = 10 * time.Millisecond

// BatchConfig configures agent-side windowed KPM indication batching
// (e2.IndicationBatch). The zero value disables batching, which also keeps
// the wire format byte-identical to the pre-batch protocol.
type BatchConfig struct {
	// Window is how many per-slot indications coalesce into one batched
	// frame; 0 or 1 disables batching.
	Window int
	// FlushInterval bounds the wait of the oldest buffered indication
	// before a partial window is flushed (default
	// DefaultBatchFlushInterval). The deadline is checked from the slot
	// loop's Tick, so flush latency is quantized to the slot cadence.
	FlushInterval time.Duration
}

func (b BatchConfig) enabled() bool { return b.Window > 1 }

func (b BatchConfig) withDefaults() BatchConfig {
	if b.FlushInterval <= 0 {
		b.FlushInterval = DefaultBatchFlushInterval
	}
	return b
}

// Validate checks the batch knobs.
func (b BatchConfig) Validate() error {
	if b.Window < 0 {
		return fmt.Errorf("ric: negative batch window %d", b.Window)
	}
	if b.Window > e2.MaxBatchIndications {
		return fmt.Errorf("ric: batch window %d exceeds frame limit %d", b.Window, e2.MaxBatchIndications)
	}
	if b.FlushInterval < 0 {
		return fmt.Errorf("ric: negative batch flush interval %v", b.FlushInterval)
	}
	return nil
}

// Config is the one validated construction surface of a RIC. The zero
// value is a working default configuration; New applies defaults after
// Validate, so a caller never pokes fields post-construction.
type Config struct {
	// ReportPeriodMs is the indication cadence requested at subscription
	// (default 100 ms).
	ReportPeriodMs uint32
	// HeartbeatInterval, when > 0, makes served associations send
	// heartbeats at this cadence and track liveness; zero disables.
	HeartbeatInterval time.Duration
	// MissedHeartbeatLimit is how many silent heartbeat intervals kill an
	// association (default DefaultMissedHeartbeatLimit).
	MissedHeartbeatLimit int

	// Shards is the number of association domains (default DefaultShards).
	// Each association hashes onto one shard carrying its own goroutine
	// budget, counters, and obs instruments, so indication fan-in never
	// serializes on a global lock.
	Shards int
	// MaxAssocPerShard is the per-shard association goroutine budget
	// (default DefaultMaxAssocPerShard); an association arriving at a full
	// shard is refused with an e2 error frame.
	MaxAssocPerShard int
	// DisableBatching stops the RIC from advertising batch capability at
	// subscription; agents then keep sending per-slot indications.
	DisableBatching bool
	// KPMHistory sizes the per-cell KPM ring (0 = DefaultKPMHistory,
	// NoKPMHistory = no store at all).
	KPMHistory int
	// Overload, when non-nil, enables the overload-control layer (see
	// overload.go): admission token buckets with TypeBusy refusals, bounded
	// per-association indication queues with drop-oldest shedding, the
	// brownout state machine, shard spill-over, and per-xApp breakers plus
	// dispatch deadlines. Nil keeps the pre-overload synchronous RIC.
	Overload *OverloadConfig

	// Assoc, when set, receives association-resilience counters.
	Assoc *AssocMetrics
	// OnFault observes xApp failures.
	OnFault func(xapp string, err error)
	// OnLog receives xApp log lines.
	OnLog func(xapp, msg string)
	// Tracer, when non-nil, enables trace negotiation and RIC-plane spans.
	Tracer *trace.Tracer
	// Flight, when non-nil, journals RIC-plane state transitions — brownout
	// shifts, shed decisions, admission refusals, per-xApp breaker trips —
	// into the flight recorder's incident journal. Nil keeps every journal
	// site a single pointer compare.
	Flight *flight.Recorder
	// Profile, when non-nil, attaches the per-function wasm profiler to
	// every xApp installed afterwards.
	Profile *wasm.Profile
}

// Validate rejects configurations New would have to guess about.
func (c Config) Validate() error {
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("ric: shard count %d outside [0, %d]", c.Shards, MaxShards)
	}
	if c.MaxAssocPerShard < 0 {
		return fmt.Errorf("ric: negative association budget %d", c.MaxAssocPerShard)
	}
	if c.MissedHeartbeatLimit < 0 {
		return fmt.Errorf("ric: negative missed-heartbeat limit %d", c.MissedHeartbeatLimit)
	}
	if c.HeartbeatInterval < 0 {
		return fmt.Errorf("ric: negative heartbeat interval %v", c.HeartbeatInterval)
	}
	if c.KPMHistory < NoKPMHistory {
		return fmt.Errorf("ric: KPM history %d (use %d to disable)", c.KPMHistory, NoKPMHistory)
	}
	if c.Overload != nil {
		if err := c.Overload.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.ReportPeriodMs == 0 {
		c.ReportPeriodMs = 100
	}
	if c.MissedHeartbeatLimit == 0 {
		c.MissedHeartbeatLimit = DefaultMissedHeartbeatLimit
	}
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	if c.MaxAssocPerShard == 0 {
		c.MaxAssocPerShard = DefaultMaxAssocPerShard
	}
	return c
}

// New creates a RIC from a validated configuration.
func New(cfg Config) (*RIC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := &RIC{
		cfg:     cfg,
		Modules: wabi.NewModuleCache(),
	}
	if cfg.KPMHistory != NoKPMHistory {
		r.KPM = NewKPMStore(cfg.KPMHistory)
	}
	r.storeXApps(nil, map[string]*XApp{})
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = newShard(i, cfg.MaxAssocPerShard)
	}
	if cfg.Overload != nil {
		ov := cfg.Overload.withDefaults()
		r.cfg.Overload = &ov
		r.ov = newOverload(ov, cfg.Shards, cfg.Tracer, cfg.Flight)
	}
	return r, nil
}

// MustNew is New for static configurations known valid at compile time
// (tests, examples); it panics on a validation error.
func MustNew(cfg Config) *RIC {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

package ric

import (
	"sync"
	"time"

	"waran/internal/e2"
)

// KPMStore is the RIC's measurement database: a bounded ring of indications
// per cell, with per-UE and per-slice history queries. The non-RT RIC's
// analytics (rApps) would read from here; in this repo it backs the RIC's
// observability and tests.
type KPMStore struct {
	mu    sync.RWMutex
	limit int
	cells map[uint32][]*StampedIndication
}

// StampedIndication pairs an indication with its arrival time.
type StampedIndication struct {
	At         time.Time
	Indication *e2.Indication
}

// DefaultKPMHistory is the per-cell ring size when limit is 0.
const DefaultKPMHistory = 1024

// NewKPMStore creates a store retaining up to limit indications per cell.
func NewKPMStore(limit int) *KPMStore {
	if limit <= 0 {
		limit = DefaultKPMHistory
	}
	return &KPMStore{limit: limit, cells: make(map[uint32][]*StampedIndication)}
}

// Record stores one indication.
func (k *KPMStore) Record(at time.Time, ind *e2.Indication) {
	k.mu.Lock()
	defer k.mu.Unlock()
	ring := append(k.cells[ind.Cell], &StampedIndication{At: at, Indication: ind})
	if len(ring) > k.limit {
		ring = ring[len(ring)-k.limit:]
	}
	k.cells[ind.Cell] = ring
}

// Cells lists cell IDs with recorded history.
func (k *KPMStore) Cells() []uint32 {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]uint32, 0, len(k.cells))
	for id := range k.cells {
		out = append(out, id)
	}
	return out
}

// Latest returns the most recent indication for a cell.
func (k *KPMStore) Latest(cell uint32) (*StampedIndication, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	ring := k.cells[cell]
	if len(ring) == 0 {
		return nil, false
	}
	return ring[len(ring)-1], true
}

// History returns up to n most recent indications for a cell, oldest first.
func (k *KPMStore) History(cell uint32, n int) []*StampedIndication {
	k.mu.RLock()
	defer k.mu.RUnlock()
	ring := k.cells[cell]
	if n <= 0 || n > len(ring) {
		n = len(ring)
	}
	out := make([]*StampedIndication, n)
	copy(out, ring[len(ring)-n:])
	return out
}

// UETputSeries extracts a UE's reported throughput across a cell's history,
// oldest first.
func (k *KPMStore) UETputSeries(cell, ueID uint32) []float64 {
	k.mu.RLock()
	defer k.mu.RUnlock()
	var out []float64
	for _, si := range k.cells[cell] {
		for _, u := range si.Indication.UEs {
			if u.UEID == ueID {
				out = append(out, u.TputBps)
				break
			}
		}
	}
	return out
}

// SliceSLACompliance reports what fraction of a slice's recorded samples
// met at least frac of its target rate (e.g. frac=0.9 for "within 90%").
func (k *KPMStore) SliceSLACompliance(cell, sliceID uint32, frac float64) (met, total int) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	for _, si := range k.cells[cell] {
		for _, s := range si.Indication.Slices {
			if s.SliceID != sliceID || s.TargetBps <= 0 {
				continue
			}
			total++
			if s.ServedBps >= frac*s.TargetBps {
				met++
			}
		}
	}
	return met, total
}

package ric

import (
	"testing"
	"time"

	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/wabi"
)

func mkInd(cell uint32, slot uint64, ueTput float64, served float64) *e2.Indication {
	return &e2.Indication{
		Cell: cell, Slot: slot,
		UEs:    []e2.UEMeasurement{{UEID: 1, SliceID: 1, TputBps: ueTput}},
		Slices: []e2.SliceMeasurement{{SliceID: 1, TargetBps: 10e6, ServedBps: served}},
	}
}

func TestKPMStoreBasics(t *testing.T) {
	k := NewKPMStore(0)
	now := time.Now()
	for i := 0; i < 5; i++ {
		k.Record(now.Add(time.Duration(i)*time.Second), mkInd(7, uint64(i), float64(i)*1e6, 9e6))
	}
	if cells := k.Cells(); len(cells) != 1 || cells[0] != 7 {
		t.Fatalf("cells = %v", cells)
	}
	latest, ok := k.Latest(7)
	if !ok || latest.Indication.Slot != 4 {
		t.Fatalf("latest = %+v", latest)
	}
	if _, ok := k.Latest(9); ok {
		t.Fatal("latest for unknown cell")
	}
	hist := k.History(7, 3)
	if len(hist) != 3 || hist[0].Indication.Slot != 2 || hist[2].Indication.Slot != 4 {
		t.Fatalf("history = %v", hist)
	}
	if all := k.History(7, 0); len(all) != 5 {
		t.Fatalf("full history = %d", len(all))
	}
	series := k.UETputSeries(7, 1)
	if len(series) != 5 || series[3] != 3e6 {
		t.Fatalf("series = %v", series)
	}
}

func TestKPMStoreRingBound(t *testing.T) {
	k := NewKPMStore(10)
	for i := 0; i < 100; i++ {
		k.Record(time.Now(), mkInd(1, uint64(i), 0, 0))
	}
	hist := k.History(1, 0)
	if len(hist) != 10 {
		t.Fatalf("ring holds %d entries, want 10", len(hist))
	}
	if hist[0].Indication.Slot != 90 {
		t.Fatalf("oldest retained slot = %d", hist[0].Indication.Slot)
	}
}

func TestKPMSLACompliance(t *testing.T) {
	k := NewKPMStore(0)
	// 6 samples above 90% of target, 4 below.
	for i := 0; i < 6; i++ {
		k.Record(time.Now(), mkInd(1, uint64(i), 0, 9.5e6))
	}
	for i := 0; i < 4; i++ {
		k.Record(time.Now(), mkInd(1, uint64(10+i), 0, 5e6))
	}
	met, total := k.SliceSLACompliance(1, 1, 0.9)
	if met != 6 || total != 10 {
		t.Fatalf("compliance = %d/%d", met, total)
	}
	// Slices with zero target are excluded.
	k2 := NewKPMStore(0)
	ind := mkInd(1, 0, 0, 5e6)
	ind.Slices[0].TargetBps = 0
	k2.Record(time.Now(), ind)
	if _, total := k2.SliceSLACompliance(1, 1, 0.9); total != 0 {
		t.Fatalf("zero-target slice counted: %d", total)
	}
}

func TestRICRecordsIntoKPM(t *testing.T) {
	r := MustNew(Config{})
	r.HandleIndication(mkInd(3, 42, 1e6, 8e6))
	latest, ok := r.KPM.Latest(3)
	if !ok || latest.Indication.Slot != 42 {
		t.Fatalf("RIC did not record indication: %v %v", latest, ok)
	}
}

// faultyXAppWAT traps on every invocation.
const faultyXAppWAT = `(module
  (import "waran" "output_write" (func $output_write (param i32 i32)))
  (memory (export "memory") 1)
  (func (export "on_indication") (result i32) unreachable))`

func TestXAppQuarantineAfterFaults(t *testing.T) {
	var faults int
	r := MustNew(Config{OnFault: func(string, error) { faults++ }})
	x, err := r.AddXAppWAT("bad", faultyXAppWAT, wabi.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddXAppWAT("good", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}
	ind := mkInd(1, 0, 0, 5e6) // under target => SLA xApp emits a boost
	for i := 0; i < DefaultXAppQuarantine+2; i++ {
		controls := r.HandleIndication(ind)
		// The healthy xApp keeps working through its peer's faults.
		if len(controls) == 0 {
			t.Fatalf("round %d: healthy xApp silenced", i)
		}
	}
	if !x.Disabled() {
		t.Fatal("faulty xApp not quarantined")
	}
	if faults != DefaultXAppQuarantine {
		t.Fatalf("fault observer saw %d faults, want %d (quarantined after)", faults, DefaultXAppQuarantine)
	}
	if st := x.Stats(); st.Invocations != DefaultXAppQuarantine || st.Faults != DefaultXAppQuarantine {
		t.Fatalf("stats = %d/%d", st.Invocations, st.Faults)
	}
}

func TestRemoveXApp(t *testing.T) {
	r := MustNew(Config{})
	if _, err := r.AddXAppWAT("a", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddXAppWAT("a", plugins.SLAAssureXAppWAT, wabi.Policy{}); err == nil {
		t.Fatal("duplicate xApp accepted")
	}
	if err := r.RemoveXApp("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveXApp("a"); err == nil {
		t.Fatal("double remove accepted")
	}
	if len(r.XApps()) != 0 {
		t.Fatal("xApp list not empty")
	}
}

func TestAddXAppRejectsMissingEntry(t *testing.T) {
	r := MustNew(Config{})
	src := `(module (memory (export "memory") 1) (func (export "wrong") (result i32) i32.const 0))`
	if _, err := r.AddXAppWAT("x", src, wabi.Policy{}); err == nil {
		t.Fatal("xApp without on_indication accepted")
	}
}

// TestKPMStoreConcurrentAccess: the store is written by association
// goroutines and read by rApps concurrently; run with -race.
func TestKPMStoreConcurrentAccess(t *testing.T) {
	k := NewKPMStore(64)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k.Record(time.Now(), mkInd(uint32(i%3+1), uint64(i), 1e6, 8e6))
		}
	}()
	for i := 0; i < 2000; i++ {
		for _, cell := range k.Cells() {
			k.Latest(cell)
			k.History(cell, 10)
			k.UETputSeries(cell, 1)
			k.SliceSLACompliance(cell, 1, 0.9)
		}
	}
	close(stop)
	<-done
}

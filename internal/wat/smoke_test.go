package wat

import (
	"errors"
	"math"
	"testing"

	"waran/internal/wasm"
)

func run(t *testing.T, src, fn string, args ...uint64) []uint64 {
	t.Helper()
	m, err := Compile(src)
	if err != nil {
		t.Fatalf("wat compile: %v", err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatalf("wasm compile: %v", err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := in.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return res
}

func TestSmokeAdd(t *testing.T) {
	res := run(t, `(module (func (export "add") (param i32 i32) (result i32)
		local.get 0 local.get 1 i32.add))`, "add", 2, 3)
	if res[0] != 5 {
		t.Fatalf("got %d, want 5", res[0])
	}
}

func TestSmokeFoldedFib(t *testing.T) {
	src := `(module
	  (func $fib (export "fib") (param $n i32) (result i32)
	    (if (result i32) (i32.lt_s (local.get $n) (i32.const 2))
	      (then (local.get $n))
	      (else
	        (i32.add
	          (call $fib (i32.sub (local.get $n) (i32.const 1)))
	          (call $fib (i32.sub (local.get $n) (i32.const 2))))))))`
	res := run(t, src, "fib", 10)
	if res[0] != 55 {
		t.Fatalf("fib(10) = %d, want 55", res[0])
	}
}

func TestSmokeLoopMemory(t *testing.T) {
	src := `(module
	  (memory (export "memory") 1)
	  (func (export "sum_bytes") (param $n i32) (result i32)
	    (local $i i32) (local $s i32)
	    block $exit
	      loop $top
	        local.get $i local.get $n i32.ge_u
	        br_if $exit
	        local.get $s
	        local.get $i i32.load8_u
	        i32.add local.set $s
	        local.get $i i32.const 1 i32.add local.set $i
	        br $top
	      end
	    end
	    local.get $s)
	  (data (i32.const 0) "\01\02\03\04\05"))`
	res := run(t, src, "sum_bytes", 5)
	if res[0] != 15 {
		t.Fatalf("sum = %d, want 15", res[0])
	}
}

func TestSmokeF64(t *testing.T) {
	src := `(module (func (export "pf") (param $r f64) (param $avg f64) (result f64)
	    (f64.div (local.get $r) (f64.max (local.get $avg) (f64.const 0.001)))))`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Call("pf", f64arg(10.0), f64arg(2.0))
	if err != nil {
		t.Fatal(err)
	}
	if got := f64val(res[0]); got != 5.0 {
		t.Fatalf("pf = %v, want 5", got)
	}
}

func TestSmokeTrapDivZero(t *testing.T) {
	src := `(module (func (export "div") (param i32 i32) (result i32)
	    local.get 0 local.get 1 i32.div_s))`
	m, _ := Compile(src)
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := cm.Instantiate(nil, wasm.Config{})
	_, err = in.Call("div", 1, 0)
	var trap *wasm.Trap
	if !errors.As(err, &trap) || trap.Code != wasm.TrapIntegerDivideByZero {
		t.Fatalf("want divide-by-zero trap, got %v", err)
	}
}

func TestSmokeHostFunc(t *testing.T) {
	src := `(module
	  (import "env" "mul2" (func $mul2 (param i32) (result i32)))
	  (func (export "run") (param i32) (result i32)
	    local.get 0 call $mul2))`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	imports := wasm.Imports{"env": {
		"mul2": &wasm.HostFunc{
			Name: "mul2",
			Type: wasm.FuncType{Params: []wasm.ValType{wasm.ValI32}, Results: []wasm.ValType{wasm.ValI32}},
			Fn: func(ctx *wasm.CallContext, args []uint64) ([]uint64, error) {
				return []uint64{uint64(uint32(args[0]) * 2)}, nil
			},
		},
	}}
	in, err := cm.Instantiate(imports, wasm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Call("run", 21)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Fatalf("got %d, want 42", res[0])
	}
}

func TestSmokeBrTable(t *testing.T) {
	src := `(module (func (export "classify") (param i32) (result i32)
	  block $b2 block $b1 block $b0
	    local.get 0
	    br_table $b0 $b1 $b2
	  end
	  i32.const 100 return
	  end
	  i32.const 200 return
	  end
	  i32.const 300))`
	for sel, want := range map[uint64]uint64{0: 100, 1: 200, 2: 300, 7: 300} {
		res := run(t, src, "classify", sel)
		if res[0] != want {
			t.Fatalf("classify(%d) = %d, want %d", sel, res[0], want)
		}
	}
}

func TestSmokeCallIndirect(t *testing.T) {
	src := `(module
	  (type $binop (func (param i32 i32) (result i32)))
	  (table 2 funcref)
	  (elem (i32.const 0) $add $sub)
	  (func $add (type $binop) local.get 0 local.get 1 i32.add)
	  (func $sub (type $binop) local.get 0 local.get 1 i32.sub)
	  (func (export "dispatch") (param $which i32) (param $a i32) (param $b i32) (result i32)
	    local.get $a local.get $b local.get $which call_indirect (type $binop)))`
	if res := run(t, src, "dispatch", 0, 7, 3); res[0] != 10 {
		t.Fatalf("add dispatch got %d", res[0])
	}
	if res := run(t, src, "dispatch", 1, 7, 3); res[0] != 4 {
		t.Fatalf("sub dispatch got %d", res[0])
	}
}

func f64arg(v float64) uint64 { return f64bits(v) }
func f64val(v uint64) float64 {
	return float64frombits(v)
}

func float64frombits(v uint64) float64 {
	return math.Float64frombits(v)
}

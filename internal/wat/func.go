package wat

import (
	"encoding/binary"
	"math"
	"strings"

	"waran/internal/leb128"
	"waran/internal/wasm"
)

// funcCompiler translates one function body (flat or folded form) into raw
// WebAssembly bytecode.
type funcCompiler struct {
	mb     *modBuilder
	pf     *pendingFunc
	labels []string // innermost last; "" for anonymous labels
	out    []byte
}

// cursor walks a sibling list of nodes, letting flat-form instructions pull
// their immediates from the stream.
type cursor struct {
	items []node
	i     int
}

func (c *cursor) done() bool  { return c.i >= len(c.items) }
func (c *cursor) peek() *node { return &c.items[c.i] }
func (c *cursor) take() *node { n := &c.items[c.i]; c.i++; return n }

func (fc *funcCompiler) compileBody() ([]byte, error) {
	cur := &cursor{items: fc.pf.body}
	for !cur.done() {
		if err := fc.compileOne(cur); err != nil {
			return nil, err
		}
	}
	if len(fc.labels) != 0 {
		return nil, errAt(fc.pf.node, "unclosed block (missing end)")
	}
	fc.emit(wasm.OpEnd)
	return fc.out, nil
}

func (fc *funcCompiler) emit(b ...byte)   { fc.out = append(fc.out, b...) }
func (fc *funcCompiler) emitU32(v uint32) { fc.out = leb128.AppendUint32(fc.out, v) }
func (fc *funcCompiler) emitS32(v int32)  { fc.out = leb128.AppendInt32(fc.out, v) }
func (fc *funcCompiler) emitS64(v int64)  { fc.out = leb128.AppendInt64(fc.out, v) }

// compileOne compiles the next item: a flat atom instruction (immediates
// taken from the cursor) or a folded list expression.
func (fc *funcCompiler) compileOne(cur *cursor) error {
	n := cur.take()
	if n.isStr {
		return errAt(n, "unexpected string literal in function body")
	}
	if !n.isList() {
		return fc.compileFlat(n, cur)
	}
	return fc.compileFolded(n)
}

// compileFlat handles an atom mnemonic whose immediates follow in the
// sibling stream.
func (fc *funcCompiler) compileFlat(n *node, cur *cursor) error {
	def, ok := instrTable[n.atom]
	if !ok {
		return errAt(n, "unknown instruction %q", n.atom)
	}
	switch def.kind {
	case immBlock:
		label := ""
		if !cur.done() && strings.HasPrefix(cur.peek().atom, "$") {
			label = cur.take().atom
		}
		bt, err := fc.blockType(cur)
		if err != nil {
			return err
		}
		fc.emit(def.op...)
		fc.emit(bt)
		fc.labels = append(fc.labels, label)
		return nil
	case immElse:
		if len(fc.labels) == 0 {
			return errAt(n, "else outside block")
		}
		// An optional label repetition may follow; skip it.
		if !cur.done() && strings.HasPrefix(cur.peek().atom, "$") {
			cur.take()
		}
		fc.emit(wasm.OpElse)
		return nil
	case immEnd:
		if len(fc.labels) == 0 {
			return errAt(n, "end without matching block")
		}
		if !cur.done() && strings.HasPrefix(cur.peek().atom, "$") {
			cur.take()
		}
		fc.labels = fc.labels[:len(fc.labels)-1]
		fc.emit(wasm.OpEnd)
		return nil
	default:
		return fc.emitWithImmediates(n, def, cur)
	}
}

// compileFolded handles a parenthesized expression: operands are compiled
// first, then the operator.
func (fc *funcCompiler) compileFolded(n *node) error {
	head := n.head()
	def, ok := instrTable[head]
	if !ok {
		return errAt(n, "unknown instruction %q", head)
	}
	items := n.list[1:]
	switch def.kind {
	case immBlock:
		label := ""
		if len(items) > 0 && strings.HasPrefix(items[0].atom, "$") {
			label = items[0].atom
			items = items[1:]
		}
		icur := &cursor{items: items}
		bt, err := fc.blockType(icur)
		if err != nil {
			return err
		}
		if head == "if" {
			return fc.compileFoldedIf(n, icur, bt, label)
		}
		fc.emit(def.op...)
		fc.emit(bt)
		fc.labels = append(fc.labels, label)
		for !icur.done() {
			if err := fc.compileOne(icur); err != nil {
				return err
			}
		}
		fc.labels = fc.labels[:len(fc.labels)-1]
		fc.emit(wasm.OpEnd)
		return nil
	case immElse, immEnd:
		return errAt(n, "%q cannot be used in folded form", head)
	default:
		icur := &cursor{items: items}
		// Immediates come first inside the list; record the output position
		// so operand code can be emitted before the operator.
		var immBuf []byte
		saved := fc.out
		fc.out = nil
		if err := fc.emitWithImmediates(n, def, icur); err != nil {
			fc.out = saved
			return err
		}
		immBuf = fc.out
		fc.out = saved
		// Remaining items are folded operands.
		for !icur.done() {
			op := icur.take()
			if !op.isList() {
				return errAt(op, "expected folded operand expression")
			}
			if err := fc.compileFolded(op); err != nil {
				return err
			}
		}
		fc.out = append(fc.out, immBuf...)
		return nil
	}
}

// compileFoldedIf compiles (if <label> <bt> <cond>... (then ...) (else ...)).
func (fc *funcCompiler) compileFoldedIf(n *node, icur *cursor, bt byte, label string) error {
	// Condition expressions run before the `if` opcode.
	for !icur.done() && icur.peek().head() != "then" {
		op := icur.take()
		if !op.isList() {
			return errAt(op, "expected folded condition expression before (then ...)")
		}
		if err := fc.compileFolded(op); err != nil {
			return err
		}
	}
	if icur.done() {
		return errAt(n, "folded if requires a (then ...) clause")
	}
	thenNode := icur.take()
	fc.emit(wasm.OpIf, bt)
	fc.labels = append(fc.labels, label)
	tcur := &cursor{items: thenNode.list[1:]}
	for !tcur.done() {
		if err := fc.compileOne(tcur); err != nil {
			return err
		}
	}
	if !icur.done() {
		elseNode := icur.take()
		if elseNode.head() != "else" {
			return errAt(elseNode, "expected (else ...) clause")
		}
		fc.emit(wasm.OpElse)
		ecur := &cursor{items: elseNode.list[1:]}
		for !ecur.done() {
			if err := fc.compileOne(ecur); err != nil {
				return err
			}
		}
	}
	if !icur.done() {
		return errAt(n, "unexpected tokens after (else ...)")
	}
	fc.labels = fc.labels[:len(fc.labels)-1]
	fc.emit(wasm.OpEnd)
	return nil
}

// blockType parses the optional (result <t>) annotation.
func (fc *funcCompiler) blockType(cur *cursor) (byte, error) {
	if cur.done() || cur.peek().head() != "result" {
		return 0x40, nil
	}
	r := cur.take()
	li := r.list[1:]
	if len(li) == 0 {
		return 0x40, nil
	}
	if len(li) != 1 {
		return 0, errAt(r, "multi-value block results are not supported")
	}
	vt, err := valTypeOf(&li[0])
	if err != nil {
		return 0, err
	}
	return byte(vt), nil
}

// emitWithImmediates encodes def.op plus its immediates drawn from cur.
func (fc *funcCompiler) emitWithImmediates(n *node, def instrDef, cur *cursor) error {
	switch def.kind {
	case immNone:
		fc.emit(def.op...)
	case immLabel:
		depth, err := fc.labelDepth(n, cur)
		if err != nil {
			return err
		}
		fc.emit(def.op...)
		fc.emitU32(depth)
	case immLabelTable:
		var depths []uint32
		for !cur.done() && isLabelish(cur.peek()) {
			d, err := fc.labelDepth(n, cur)
			if err != nil {
				return err
			}
			depths = append(depths, d)
		}
		if len(depths) == 0 {
			return errAt(n, "br_table needs at least a default label")
		}
		fc.emit(def.op...)
		fc.emitU32(uint32(len(depths) - 1))
		for _, d := range depths {
			fc.emitU32(d)
		}
	case immFunc:
		if cur.done() {
			return errAt(n, "call needs a function index")
		}
		ix, err := fc.mb.resolve(cur.take(), fc.mb.funcNames, "function")
		if err != nil {
			return err
		}
		fc.emit(def.op...)
		fc.emitU32(ix)
	case immCallIndirect:
		tix, _, rest, err := fc.mb.parseTypeUse(cur.items[cur.i:])
		if err != nil {
			return err
		}
		cur.i = len(cur.items) - len(rest)
		fc.emit(def.op...)
		fc.emitU32(tix)
		fc.emit(0x00) // table index
	case immLocal:
		if cur.done() {
			return errAt(n, "local instruction needs an index")
		}
		ln := cur.take()
		var ix uint32
		if strings.HasPrefix(ln.atom, "$") {
			v, ok := fc.pf.names[ln.atom]
			if !ok {
				return errAt(ln, "unknown local %s", ln.atom)
			}
			ix = v
		} else {
			v, err := parseI64(ln.atom, 32)
			if err != nil {
				return errAt(ln, "invalid local index %q", ln.atom)
			}
			ix = uint32(v)
		}
		fc.emit(def.op...)
		fc.emitU32(ix)
	case immGlobal:
		if cur.done() {
			return errAt(n, "global instruction needs an index")
		}
		ix, err := fc.mb.resolve(cur.take(), fc.mb.globalNames, "global")
		if err != nil {
			return err
		}
		fc.emit(def.op...)
		fc.emitU32(ix)
	case immMem:
		offset, align := uint32(0), def.natAlign
		for !cur.done() && !cur.peek().isList() {
			a := cur.peek().atom
			if v, ok := strings.CutPrefix(a, "offset="); ok {
				pv, err := parseI64(v, 32)
				if err != nil {
					return errAt(cur.peek(), "invalid offset %q", a)
				}
				offset = uint32(pv)
				cur.take()
				continue
			}
			if v, ok := strings.CutPrefix(a, "align="); ok {
				pv, err := parseI64(v, 32)
				if err != nil || pv == 0 || pv&(pv-1) != 0 {
					return errAt(cur.peek(), "invalid align %q", a)
				}
				log := uint32(0)
				for 1<<(log+1) <= pv {
					log++
				}
				align = log
				cur.take()
				continue
			}
			break
		}
		fc.emit(def.op...)
		fc.emitU32(align)
		fc.emitU32(offset)
	case immMemIdx:
		fc.emit(def.op...)
		fc.emit(0x00)
	case immI32:
		if cur.done() {
			return errAt(n, "i32.const needs a value")
		}
		v, err := parseI64(cur.take().atom, 32)
		if err != nil {
			return errAt(n, "%v", err)
		}
		fc.emit(def.op...)
		fc.emitS32(int32(uint32(v)))
	case immI64:
		if cur.done() {
			return errAt(n, "i64.const needs a value")
		}
		v, err := parseI64(cur.take().atom, 64)
		if err != nil {
			return errAt(n, "%v", err)
		}
		fc.emit(def.op...)
		fc.emitS64(int64(v))
	case immF32:
		if cur.done() {
			return errAt(n, "f32.const needs a value")
		}
		v, err := parseF32(cur.take().atom)
		if err != nil {
			return errAt(n, "%v", err)
		}
		fc.emit(def.op...)
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], f32bits(v))
		fc.emit(b[:]...)
	case immF64:
		if cur.done() {
			return errAt(n, "f64.const needs a value")
		}
		v, err := parseF64(cur.take().atom)
		if err != nil {
			return errAt(n, "%v", err)
		}
		fc.emit(def.op...)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], f64bits(v))
		fc.emit(b[:]...)
	default:
		return errAt(n, "internal error: unhandled immediate kind")
	}
	return nil
}

func isLabelish(n *node) bool {
	if n.isList() || n.isStr {
		return false
	}
	if strings.HasPrefix(n.atom, "$") {
		return true
	}
	_, err := parseI64(n.atom, 32)
	return err == nil
}

// labelDepth resolves a label reference (numeric depth or $name).
func (fc *funcCompiler) labelDepth(n *node, cur *cursor) (uint32, error) {
	if cur.done() {
		return 0, errAt(n, "branch needs a label")
	}
	ln := cur.take()
	if strings.HasPrefix(ln.atom, "$") {
		for d := 0; d < len(fc.labels); d++ {
			if fc.labels[len(fc.labels)-1-d] == ln.atom {
				return uint32(d), nil
			}
		}
		return 0, errAt(ln, "unknown label %s", ln.atom)
	}
	v, err := parseI64(ln.atom, 32)
	if err != nil {
		return 0, errAt(ln, "invalid label %q", ln.atom)
	}
	return uint32(v), nil
}

func f32bits(v float32) uint32 { return math.Float32bits(v) }
func f64bits(v float64) uint64 { return math.Float64bits(v) }

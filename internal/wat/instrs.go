package wat

import "waran/internal/wasm"

// immKind classifies the immediates an instruction mnemonic takes in the
// text format.
type immKind int

const (
	immNone  immKind = iota
	immBlock         // block / loop / if: optional label and block type
	immElse
	immEnd
	immLabel      // br, br_if: one label
	immLabelTable // br_table: label vector
	immFunc       // call: function index
	immCallIndirect
	immLocal  // local.get/set/tee
	immGlobal // global.get/set
	immMem    // loads/stores: optional offset= and align=
	immMemIdx // memory.size / memory.grow: implicit memory 0
	immI32
	immI64
	immF32
	immF64
)

type instrDef struct {
	op       []byte // encoded opcode (multi-byte for 0xFC-prefixed)
	kind     immKind
	natAlign uint32 // log2 natural alignment for memory ops
}

func op1(b byte, k immKind) instrDef { return instrDef{op: []byte{b}, kind: k} }

func opMem(b byte, align uint32) instrDef {
	return instrDef{op: []byte{b}, kind: immMem, natAlign: align}
}

func opMisc(sub byte) instrDef {
	return instrDef{op: []byte{wasm.OpPrefixMisc, sub}, kind: immNone}
}

// instrTable maps text-format mnemonics to their encodings.
var instrTable = map[string]instrDef{
	"unreachable":   op1(wasm.OpUnreachable, immNone),
	"nop":           op1(wasm.OpNop, immNone),
	"block":         op1(wasm.OpBlock, immBlock),
	"loop":          op1(wasm.OpLoop, immBlock),
	"if":            op1(wasm.OpIf, immBlock),
	"else":          op1(wasm.OpElse, immElse),
	"end":           op1(wasm.OpEnd, immEnd),
	"br":            op1(wasm.OpBr, immLabel),
	"br_if":         op1(wasm.OpBrIf, immLabel),
	"br_table":      op1(wasm.OpBrTable, immLabelTable),
	"return":        op1(wasm.OpReturn, immNone),
	"call":          op1(wasm.OpCall, immFunc),
	"call_indirect": {op: []byte{wasm.OpCallIndirect}, kind: immCallIndirect},

	"drop":   op1(wasm.OpDrop, immNone),
	"select": op1(wasm.OpSelect, immNone),

	"local.get":  op1(wasm.OpLocalGet, immLocal),
	"local.set":  op1(wasm.OpLocalSet, immLocal),
	"local.tee":  op1(wasm.OpLocalTee, immLocal),
	"global.get": op1(wasm.OpGlobalGet, immGlobal),
	"global.set": op1(wasm.OpGlobalSet, immGlobal),

	"i32.load":     opMem(wasm.OpI32Load, 2),
	"i64.load":     opMem(wasm.OpI64Load, 3),
	"f32.load":     opMem(wasm.OpF32Load, 2),
	"f64.load":     opMem(wasm.OpF64Load, 3),
	"i32.load8_s":  opMem(wasm.OpI32Load8S, 0),
	"i32.load8_u":  opMem(wasm.OpI32Load8U, 0),
	"i32.load16_s": opMem(wasm.OpI32Load16S, 1),
	"i32.load16_u": opMem(wasm.OpI32Load16U, 1),
	"i64.load8_s":  opMem(wasm.OpI64Load8S, 0),
	"i64.load8_u":  opMem(wasm.OpI64Load8U, 0),
	"i64.load16_s": opMem(wasm.OpI64Load16S, 1),
	"i64.load16_u": opMem(wasm.OpI64Load16U, 1),
	"i64.load32_s": opMem(wasm.OpI64Load32S, 2),
	"i64.load32_u": opMem(wasm.OpI64Load32U, 2),
	"i32.store":    opMem(wasm.OpI32Store, 2),
	"i64.store":    opMem(wasm.OpI64Store, 3),
	"f32.store":    opMem(wasm.OpF32Store, 2),
	"f64.store":    opMem(wasm.OpF64Store, 3),
	"i32.store8":   opMem(wasm.OpI32Store8, 0),
	"i32.store16":  opMem(wasm.OpI32Store16, 1),
	"i64.store8":   opMem(wasm.OpI64Store8, 0),
	"i64.store16":  opMem(wasm.OpI64Store16, 1),
	"i64.store32":  opMem(wasm.OpI64Store32, 2),
	"memory.size":  op1(wasm.OpMemorySize, immMemIdx),
	"memory.grow":  op1(wasm.OpMemoryGrow, immMemIdx),
	"memory.copy":  {op: []byte{wasm.OpPrefixMisc, 10, 0x00, 0x00}, kind: immNone},
	"memory.fill":  {op: []byte{wasm.OpPrefixMisc, 11, 0x00}, kind: immNone},

	"i32.const": op1(wasm.OpI32Const, immI32),
	"i64.const": op1(wasm.OpI64Const, immI64),
	"f32.const": op1(wasm.OpF32Const, immF32),
	"f64.const": op1(wasm.OpF64Const, immF64),

	"i32.eqz":  op1(wasm.OpI32Eqz, immNone),
	"i32.eq":   op1(wasm.OpI32Eq, immNone),
	"i32.ne":   op1(wasm.OpI32Ne, immNone),
	"i32.lt_s": op1(wasm.OpI32LtS, immNone),
	"i32.lt_u": op1(wasm.OpI32LtU, immNone),
	"i32.gt_s": op1(wasm.OpI32GtS, immNone),
	"i32.gt_u": op1(wasm.OpI32GtU, immNone),
	"i32.le_s": op1(wasm.OpI32LeS, immNone),
	"i32.le_u": op1(wasm.OpI32LeU, immNone),
	"i32.ge_s": op1(wasm.OpI32GeS, immNone),
	"i32.ge_u": op1(wasm.OpI32GeU, immNone),
	"i64.eqz":  op1(wasm.OpI64Eqz, immNone),
	"i64.eq":   op1(wasm.OpI64Eq, immNone),
	"i64.ne":   op1(wasm.OpI64Ne, immNone),
	"i64.lt_s": op1(wasm.OpI64LtS, immNone),
	"i64.lt_u": op1(wasm.OpI64LtU, immNone),
	"i64.gt_s": op1(wasm.OpI64GtS, immNone),
	"i64.gt_u": op1(wasm.OpI64GtU, immNone),
	"i64.le_s": op1(wasm.OpI64LeS, immNone),
	"i64.le_u": op1(wasm.OpI64LeU, immNone),
	"i64.ge_s": op1(wasm.OpI64GeS, immNone),
	"i64.ge_u": op1(wasm.OpI64GeU, immNone),
	"f32.eq":   op1(wasm.OpF32Eq, immNone),
	"f32.ne":   op1(wasm.OpF32Ne, immNone),
	"f32.lt":   op1(wasm.OpF32Lt, immNone),
	"f32.gt":   op1(wasm.OpF32Gt, immNone),
	"f32.le":   op1(wasm.OpF32Le, immNone),
	"f32.ge":   op1(wasm.OpF32Ge, immNone),
	"f64.eq":   op1(wasm.OpF64Eq, immNone),
	"f64.ne":   op1(wasm.OpF64Ne, immNone),
	"f64.lt":   op1(wasm.OpF64Lt, immNone),
	"f64.gt":   op1(wasm.OpF64Gt, immNone),
	"f64.le":   op1(wasm.OpF64Le, immNone),
	"f64.ge":   op1(wasm.OpF64Ge, immNone),

	"i32.clz":    op1(wasm.OpI32Clz, immNone),
	"i32.ctz":    op1(wasm.OpI32Ctz, immNone),
	"i32.popcnt": op1(wasm.OpI32Popcnt, immNone),
	"i32.add":    op1(wasm.OpI32Add, immNone),
	"i32.sub":    op1(wasm.OpI32Sub, immNone),
	"i32.mul":    op1(wasm.OpI32Mul, immNone),
	"i32.div_s":  op1(wasm.OpI32DivS, immNone),
	"i32.div_u":  op1(wasm.OpI32DivU, immNone),
	"i32.rem_s":  op1(wasm.OpI32RemS, immNone),
	"i32.rem_u":  op1(wasm.OpI32RemU, immNone),
	"i32.and":    op1(wasm.OpI32And, immNone),
	"i32.or":     op1(wasm.OpI32Or, immNone),
	"i32.xor":    op1(wasm.OpI32Xor, immNone),
	"i32.shl":    op1(wasm.OpI32Shl, immNone),
	"i32.shr_s":  op1(wasm.OpI32ShrS, immNone),
	"i32.shr_u":  op1(wasm.OpI32ShrU, immNone),
	"i32.rotl":   op1(wasm.OpI32Rotl, immNone),
	"i32.rotr":   op1(wasm.OpI32Rotr, immNone),
	"i64.clz":    op1(wasm.OpI64Clz, immNone),
	"i64.ctz":    op1(wasm.OpI64Ctz, immNone),
	"i64.popcnt": op1(wasm.OpI64Popcnt, immNone),
	"i64.add":    op1(wasm.OpI64Add, immNone),
	"i64.sub":    op1(wasm.OpI64Sub, immNone),
	"i64.mul":    op1(wasm.OpI64Mul, immNone),
	"i64.div_s":  op1(wasm.OpI64DivS, immNone),
	"i64.div_u":  op1(wasm.OpI64DivU, immNone),
	"i64.rem_s":  op1(wasm.OpI64RemS, immNone),
	"i64.rem_u":  op1(wasm.OpI64RemU, immNone),
	"i64.and":    op1(wasm.OpI64And, immNone),
	"i64.or":     op1(wasm.OpI64Or, immNone),
	"i64.xor":    op1(wasm.OpI64Xor, immNone),
	"i64.shl":    op1(wasm.OpI64Shl, immNone),
	"i64.shr_s":  op1(wasm.OpI64ShrS, immNone),
	"i64.shr_u":  op1(wasm.OpI64ShrU, immNone),
	"i64.rotl":   op1(wasm.OpI64Rotl, immNone),
	"i64.rotr":   op1(wasm.OpI64Rotr, immNone),

	"f32.abs":      op1(wasm.OpF32Abs, immNone),
	"f32.neg":      op1(wasm.OpF32Neg, immNone),
	"f32.ceil":     op1(wasm.OpF32Ceil, immNone),
	"f32.floor":    op1(wasm.OpF32Floor, immNone),
	"f32.trunc":    op1(wasm.OpF32Trunc, immNone),
	"f32.nearest":  op1(wasm.OpF32Nearest, immNone),
	"f32.sqrt":     op1(wasm.OpF32Sqrt, immNone),
	"f32.add":      op1(wasm.OpF32Add, immNone),
	"f32.sub":      op1(wasm.OpF32Sub, immNone),
	"f32.mul":      op1(wasm.OpF32Mul, immNone),
	"f32.div":      op1(wasm.OpF32Div, immNone),
	"f32.min":      op1(wasm.OpF32Min, immNone),
	"f32.max":      op1(wasm.OpF32Max, immNone),
	"f32.copysign": op1(wasm.OpF32Copysign, immNone),
	"f64.abs":      op1(wasm.OpF64Abs, immNone),
	"f64.neg":      op1(wasm.OpF64Neg, immNone),
	"f64.ceil":     op1(wasm.OpF64Ceil, immNone),
	"f64.floor":    op1(wasm.OpF64Floor, immNone),
	"f64.trunc":    op1(wasm.OpF64Trunc, immNone),
	"f64.nearest":  op1(wasm.OpF64Nearest, immNone),
	"f64.sqrt":     op1(wasm.OpF64Sqrt, immNone),
	"f64.add":      op1(wasm.OpF64Add, immNone),
	"f64.sub":      op1(wasm.OpF64Sub, immNone),
	"f64.mul":      op1(wasm.OpF64Mul, immNone),
	"f64.div":      op1(wasm.OpF64Div, immNone),
	"f64.min":      op1(wasm.OpF64Min, immNone),
	"f64.max":      op1(wasm.OpF64Max, immNone),
	"f64.copysign": op1(wasm.OpF64Copysign, immNone),

	"i32.wrap_i64":        op1(wasm.OpI32WrapI64, immNone),
	"i32.trunc_f32_s":     op1(wasm.OpI32TruncF32S, immNone),
	"i32.trunc_f32_u":     op1(wasm.OpI32TruncF32U, immNone),
	"i32.trunc_f64_s":     op1(wasm.OpI32TruncF64S, immNone),
	"i32.trunc_f64_u":     op1(wasm.OpI32TruncF64U, immNone),
	"i64.extend_i32_s":    op1(wasm.OpI64ExtendI32S, immNone),
	"i64.extend_i32_u":    op1(wasm.OpI64ExtendI32U, immNone),
	"i64.trunc_f32_s":     op1(wasm.OpI64TruncF32S, immNone),
	"i64.trunc_f32_u":     op1(wasm.OpI64TruncF32U, immNone),
	"i64.trunc_f64_s":     op1(wasm.OpI64TruncF64S, immNone),
	"i64.trunc_f64_u":     op1(wasm.OpI64TruncF64U, immNone),
	"f32.convert_i32_s":   op1(wasm.OpF32ConvertI32S, immNone),
	"f32.convert_i32_u":   op1(wasm.OpF32ConvertI32U, immNone),
	"f32.convert_i64_s":   op1(wasm.OpF32ConvertI64S, immNone),
	"f32.convert_i64_u":   op1(wasm.OpF32ConvertI64U, immNone),
	"f32.demote_f64":      op1(wasm.OpF32DemoteF64, immNone),
	"f64.convert_i32_s":   op1(wasm.OpF64ConvertI32S, immNone),
	"f64.convert_i32_u":   op1(wasm.OpF64ConvertI32U, immNone),
	"f64.convert_i64_s":   op1(wasm.OpF64ConvertI64S, immNone),
	"f64.convert_i64_u":   op1(wasm.OpF64ConvertI64U, immNone),
	"f64.promote_f32":     op1(wasm.OpF64PromoteF32, immNone),
	"i32.reinterpret_f32": op1(wasm.OpI32ReinterpretF32, immNone),
	"i64.reinterpret_f64": op1(wasm.OpI64ReinterpretF64, immNone),
	"f32.reinterpret_i32": op1(wasm.OpF32ReinterpretI32, immNone),
	"f64.reinterpret_i64": op1(wasm.OpF64ReinterpretI64, immNone),

	"i32.extend8_s":  op1(wasm.OpI32Extend8S, immNone),
	"i32.extend16_s": op1(wasm.OpI32Extend16S, immNone),
	"i64.extend8_s":  op1(wasm.OpI64Extend8S, immNone),
	"i64.extend16_s": op1(wasm.OpI64Extend16S, immNone),
	"i64.extend32_s": op1(wasm.OpI64Extend32S, immNone),

	"i32.trunc_sat_f32_s": opMisc(0),
	"i32.trunc_sat_f32_u": opMisc(1),
	"i32.trunc_sat_f64_s": opMisc(2),
	"i32.trunc_sat_f64_u": opMisc(3),
	"i64.trunc_sat_f32_s": opMisc(4),
	"i64.trunc_sat_f32_u": opMisc(5),
	"i64.trunc_sat_f64_s": opMisc(6),
	"i64.trunc_sat_f64_u": opMisc(7),
}

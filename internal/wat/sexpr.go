// Package wat compiles the WebAssembly text format into wasm.Module values.
//
// It supports the module constructs needed by WA-RAN plugin development:
// types, imports, functions (flat and folded instruction forms), memories,
// tables, globals, element and data segments, exports and start functions,
// with symbolic $identifiers throughout.
package wat

import (
	"fmt"
	"strings"
)

// node is one s-expression: either an atom (identifier, keyword, number), a
// string literal, or a parenthesized list.
type node struct {
	atom  string
	str   string
	isStr bool
	list  []node
	line  int
	col   int
}

func (n *node) isList() bool { return !n.isStr && n.atom == "" }

func (n *node) head() string {
	if n.isList() && len(n.list) > 0 && !n.list[0].isList() && !n.list[0].isStr {
		return n.list[0].atom
	}
	return ""
}

func (n *node) pos() string { return fmt.Sprintf("%d:%d", n.line, n.col) }

// SyntaxError reports a parse failure with source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("wat:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(n *node, format string, args ...any) error {
	return &SyntaxError{Line: n.line, Col: n.col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == ';' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ';':
			depth := 0
			start := *l
			for l.pos < len(l.src) {
				if l.src[l.pos] == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ';' {
					depth++
					l.advance()
					l.advance()
					continue
				}
				if l.src[l.pos] == ';' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ')' {
					depth--
					l.advance()
					l.advance()
					if depth == 0 {
						break
					}
					continue
				}
				l.advance()
			}
			if depth != 0 {
				return start.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// parseAll parses the full source into a list of top-level nodes.
func parseAll(src string) ([]node, error) {
	l := newLexer(src)
	var out []node
	for {
		if err := l.skipSpace(); err != nil {
			return nil, err
		}
		if l.pos >= len(l.src) {
			return out, nil
		}
		n, err := l.parseNode()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
}

func (l *lexer) parseNode() (node, error) {
	if err := l.skipSpace(); err != nil {
		return node{}, err
	}
	if l.pos >= len(l.src) {
		return node{}, l.errf("unexpected end of input")
	}
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.advance()
		n := node{line: line, col: col, list: []node{}}
		for {
			if err := l.skipSpace(); err != nil {
				return node{}, err
			}
			if l.pos >= len(l.src) {
				return node{}, l.errf("unterminated list opened at %d:%d", line, col)
			}
			if l.src[l.pos] == ')' {
				l.advance()
				return n, nil
			}
			child, err := l.parseNode()
			if err != nil {
				return node{}, err
			}
			n.list = append(n.list, child)
		}
	case c == ')':
		return node{}, l.errf("unexpected ')'")
	case c == '"':
		s, err := l.parseString()
		if err != nil {
			return node{}, err
		}
		return node{line: line, col: col, str: s, isStr: true}, nil
	default:
		start := l.pos
		for l.pos < len(l.src) && !isDelim(l.src[l.pos]) {
			l.advance()
		}
		atom := l.src[start:l.pos]
		if atom == "" {
			return node{}, l.errf("unexpected character %q", c)
		}
		return node{line: line, col: col, atom: atom}, nil
	}
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '(', ')', '"', ';':
		return true
	}
	return false
}

// parseString parses a WAT string literal, decoding escape sequences. The
// result may contain arbitrary bytes.
func (l *lexer) parseString() (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", l.errf("unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return b.String(), nil
		case '\\':
			if l.pos >= len(l.src) {
				return "", l.errf("unterminated escape sequence")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case 'u':
				if l.pos >= len(l.src) || l.src[l.pos] != '{' {
					return "", l.errf(`\u escape requires {...}`)
				}
				l.advance()
				var v rune
				for l.pos < len(l.src) && l.src[l.pos] != '}' {
					d := hexVal(l.advance())
					if d < 0 {
						return "", l.errf(`invalid hex digit in \u escape`)
					}
					v = v*16 + rune(d)
				}
				if l.pos >= len(l.src) {
					return "", l.errf(`unterminated \u escape`)
				}
				l.advance() // '}'
				b.WriteRune(v)
			default:
				d1 := hexVal(e)
				if d1 < 0 || l.pos >= len(l.src) {
					return "", l.errf("invalid escape sequence \\%c", e)
				}
				d2 := hexVal(l.advance())
				if d2 < 0 {
					return "", l.errf("invalid hex escape")
				}
				b.WriteByte(byte(d1*16 + d2))
			}
		default:
			b.WriteByte(c)
		}
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

package wat

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// parseI64 parses a WAT integer literal (decimal or 0x hex, optional sign,
// underscores permitted) that must fit in `bits` when interpreted as either
// signed or unsigned (WAT allows e.g. i32.const 0xFFFFFFFF and -1 alike).
// The result is the raw two's-complement value sign-extended to 64 bits for
// signed interpretation.
func parseI64(s string, bits uint) (uint64, error) {
	orig := s
	neg := false
	if strings.HasPrefix(s, "+") {
		s = s[1:]
	} else if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	s = strings.ReplaceAll(s, "_", "")
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		s = s[2:]
	}
	if s == "" {
		return 0, fmt.Errorf("invalid integer literal %q", orig)
	}
	mag, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid integer literal %q: %w", orig, err)
	}
	if neg {
		// Magnitude must fit the signed range.
		limit := uint64(1) << (bits - 1)
		if mag > limit {
			return 0, fmt.Errorf("integer literal %q out of range for %d bits", orig, bits)
		}
		v := -int64(mag)
		if bits == 32 {
			return uint64(uint32(v)), nil
		}
		return uint64(v), nil
	}
	if bits < 64 && mag >= 1<<bits {
		return 0, fmt.Errorf("integer literal %q out of range for %d bits", orig, bits)
	}
	return mag, nil
}

// parseF64 parses a WAT float literal: decimal or hex floats, inf, and nan
// (with optional payload).
func parseF64(s string) (float64, error) {
	orig := s
	neg := false
	if strings.HasPrefix(s, "+") {
		s = s[1:]
	} else if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	s = strings.ReplaceAll(s, "_", "")
	var v float64
	switch {
	case s == "inf":
		v = math.Inf(1)
	case s == "nan":
		v = math.NaN()
	case strings.HasPrefix(s, "nan:0x"):
		payload, err := strconv.ParseUint(s[6:], 16, 64)
		if err != nil || payload == 0 || payload >= 1<<52 {
			return 0, fmt.Errorf("invalid nan payload in %q", orig)
		}
		bits := uint64(0x7FF0_0000_0000_0000) | payload
		v = math.Float64frombits(bits)
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		// Go's strconv supports hex floats with a p exponent.
		h := s
		if !strings.ContainsAny(h, "pP") {
			h += "p0"
		}
		f, err := strconv.ParseFloat(h, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid hex float literal %q: %w", orig, err)
		}
		v = f
	default:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid float literal %q: %w", orig, err)
		}
		v = f
	}
	if neg {
		v = -v
		if math.IsNaN(v) {
			v = math.Float64frombits(math.Float64bits(v) | (1 << 63))
		}
	}
	return v, nil
}

// parseF32 parses a float literal and rounds it to float32.
func parseF32(s string) (float32, error) {
	if strings.HasPrefix(s, "nan:0x") || strings.HasPrefix(s, "-nan:0x") || strings.HasPrefix(s, "+nan:0x") {
		neg := strings.HasPrefix(s, "-")
		t := strings.TrimLeft(s, "+-")
		payload, err := strconv.ParseUint(t[6:], 16, 32)
		if err != nil || payload == 0 || payload >= 1<<23 {
			return 0, fmt.Errorf("invalid f32 nan payload in %q", s)
		}
		bits := uint32(0x7F80_0000) | uint32(payload)
		if neg {
			bits |= 1 << 31
		}
		return math.Float32frombits(bits), nil
	}
	v, err := parseF64(s)
	if err != nil {
		return 0, err
	}
	return float32(v), nil
}

package wat

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"waran/internal/wasm"
)

func TestNumberParsing(t *testing.T) {
	cases := []struct {
		in   string
		bits uint
		want uint64
		ok   bool
	}{
		{"0", 32, 0, true},
		{"42", 32, 42, true},
		{"-1", 32, 0xFFFFFFFF, true},
		{"0xFF", 32, 255, true},
		{"0xFFFFFFFF", 32, 0xFFFFFFFF, true},
		{"-2147483648", 32, 0x80000000, true},
		{"2147483648", 32, 0x80000000, true}, // unsigned interpretation
		{"4294967296", 32, 0, false},
		{"-2147483649", 32, 0, false},
		{"1_000_000", 32, 1000000, true},
		{"0x7FFF_FFFF", 32, 0x7FFFFFFF, true},
		{"-9223372036854775808", 64, 0x8000000000000000, true},
		{"18446744073709551615", 64, math.MaxUint64, true},
		{"", 32, 0, false},
		{"abc", 32, 0, false},
	}
	for _, tc := range cases {
		got, err := parseI64(tc.in, tc.bits)
		if tc.ok != (err == nil) {
			t.Errorf("parseI64(%q, %d): err = %v, want ok=%v", tc.in, tc.bits, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseI64(%q, %d) = %#x, want %#x", tc.in, tc.bits, got, tc.want)
		}
	}
}

func TestFloatParsing(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"0", 0},
		{"1.5", 1.5},
		{"-2.25", -2.25},
		{"1e3", 1000},
		{"-1.5e-2", -0.015},
		{"inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
		{"0x1.8p3", 12},
		{"0x10", 16},
		{"1_0.5", 10.5},
	}
	for _, tc := range cases {
		got, err := parseF64(tc.in)
		if err != nil {
			t.Errorf("parseF64(%q): %v", tc.in, err)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(tc.want) {
			t.Errorf("parseF64(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if v, err := parseF64("nan"); err != nil || !math.IsNaN(v) {
		t.Errorf("parseF64(nan) = %v, %v", v, err)
	}
	if v, err := parseF64("-nan"); err != nil || !math.IsNaN(v) || math.Float64bits(v)>>63 != 1 {
		t.Errorf("parseF64(-nan) = %v (bits %x), %v", v, math.Float64bits(v), err)
	}
	if v, err := parseF64("nan:0x4000"); err != nil || math.Float64bits(v)&0x4000 == 0 {
		t.Errorf("nan payload lost: %x, %v", math.Float64bits(v), err)
	}
}

func TestStringEscapes(t *testing.T) {
	src := `(module (memory 1) (data (i32.const 0) "a\tb\n\"q\"\5c\u{263A}"))`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\tb\n\"q\"\\☺"
	if string(m.Datas[0].Bytes) != want {
		t.Fatalf("data = %q, want %q", m.Datas[0].Bytes, want)
	}
}

func TestComments(t *testing.T) {
	src := `(module
	  ;; line comment (with parens)
	  (; block (; nested ;) comment ;)
	  (func (export "f") (result i32)
	    i32.const 7 ;; trailing
	  ))`
	res := run(t, src, "f")
	if res[0] != 7 {
		t.Fatalf("got %d", res[0])
	}
}

func TestFlatAndFoldedProduceSameBinary(t *testing.T) {
	flat := `(module (func (export "f") (param i32) (result i32)
	  local.get 0
	  i32.const 3
	  i32.mul
	  i32.const 1
	  i32.add))`
	folded := `(module (func (export "f") (param i32) (result i32)
	  (i32.add (i32.mul (local.get 0) (i32.const 3)) (i32.const 1))))`
	b1, err := CompileToBinary(flat)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := CompileToBinary(folded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("flat and folded forms produced different binaries")
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{`(module (func (export "f") unknown.op))`, "unknown instruction"},
		{`(module (func local.get $nope))`, "unknown local"},
		{`(module (func call $nope))`, "unknown function"},
		{`(module (func br $nope))`, "unknown label"},
		{`(module (blah))`, "unknown module field"},
		{`(module (func (export 42)))`, "export"},
		{`(module (func`, "unterminated"},
		{`(module))`, "unexpected ')'"},
		{`(module (func (type 9)))`, "out of range"},
		{`(module "str")`, "module field"},
		{`(module (global $g i32 (i32.const 1)) (global $g i32 (i32.const 2)) (func))`, "duplicate global"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil {
			t.Errorf("Compile(%q) unexpectedly succeeded", tc.src)
			continue
		}
		if tc.substr != "" && !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("Compile(%q) error %q, want mention of %q", tc.src, err, tc.substr)
		}
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := Compile("(module\n  (func unknown.op))")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T: %v", err, err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Line)
	}
}

func TestNamedLabelsAndShadowing(t *testing.T) {
	// Inner $l shadows outer $l; br $l must target the innermost.
	src := `(module (func (export "f") (result i32)
	  (local $r i32)
	  block $l
	    block $l
	      br $l  ;; inner
	    end
	    local.get $r i32.const 1 i32.add local.set $r
	  end
	  local.get $r))`
	res := run(t, src, "f")
	if res[0] != 1 {
		t.Fatalf("inner-label branch skipped wrong block: r = %d", res[0])
	}
}

func TestMemArgOffsets(t *testing.T) {
	src := `(module (memory (export "memory") 1)
	  (data (i32.const 24) "\2A")
	  (func (export "f") (result i32)
	    i32.const 8 i32.load8_u offset=16 align=1))`
	res := run(t, src, "f")
	if res[0] != 42 {
		t.Fatalf("offset load = %d", res[0])
	}
}

func TestTypeUseMismatchRejected(t *testing.T) {
	src := `(module
	  (type $t (func (param i32) (result i32)))
	  (func (type $t) (param i64) (result i32) i32.const 0))`
	if _, err := Compile(src); err == nil {
		t.Fatal("mismatched inline signature accepted")
	}
}

func TestInlineImportExport(t *testing.T) {
	src := `(module
	  (func $h (import "env" "h") (param i32) (result i32))
	  (func (export "f") (export "g") (param i32) (result i32)
	    local.get 0 call $h))`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Imports) != 1 {
		t.Fatalf("imports = %+v", m.Imports)
	}
	names := map[string]bool{}
	for _, e := range m.Exports {
		names[e.Name] = true
	}
	if !names["f"] || !names["g"] {
		t.Fatalf("exports = %+v", m.Exports)
	}
}

func TestImportAfterFuncRejected(t *testing.T) {
	src := `(module (func) (import "a" "b" (func)))`
	if _, err := Compile(src); err == nil {
		t.Fatal("import after func definition accepted")
	}
}

func TestGlobalInitForms(t *testing.T) {
	src := `(module
	  (global $a i32 (i32.const -3))
	  (global $b (mut f64) (f64.const 0.5))
	  (global $c i64 (i64.const 0xFFFFFFFFFFFFFFFF))
	  (export "a" (global $a))
	  (func))`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Globals[0].Init.Value != uint64(uint32(0xFFFFFFFD)) {
		t.Fatalf("global a init = %#x", m.Globals[0].Init.Value)
	}
	if !m.Globals[1].Type.Mutable {
		t.Fatal("global b should be mutable")
	}
	if m.Globals[2].Init.Value != math.MaxUint64 {
		t.Fatalf("global c init = %#x", m.Globals[2].Init.Value)
	}
}

func TestBrTableNumericAndNamed(t *testing.T) {
	src := `(module (func (export "f") (param i32) (result i32)
	  block $b1 block $b0
	    local.get 0
	    br_table 0 $b1
	  end
	  i32.const 10 return
	  end
	  i32.const 20))`
	if res := run(t, src, "f", 0); res[0] != 10 {
		t.Fatalf("f(0) = %d", res[0])
	}
	if res := run(t, src, "f", 1); res[0] != 20 {
		t.Fatalf("f(1) = %d", res[0])
	}
}

func TestMultipleResultsRejectedInBlock(t *testing.T) {
	src := `(module (func (result i32)
	  block (result i32 i32) i32.const 1 i32.const 2 end
	  i32.add))`
	if _, err := Compile(src); err == nil {
		t.Fatal("multi-value block accepted")
	}
}

func TestEmptyModule(t *testing.T) {
	m, err := Compile("(module)")
	if err != nil {
		t.Fatal(err)
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) != 8 {
		t.Fatalf("empty module is %d bytes, want 8", len(bin))
	}
}

func TestTopLevelFieldsWithoutModuleWrapper(t *testing.T) {
	src := `(func (export "one") (result i32) i32.const 1)`
	res := run(t, src, "one")
	if res[0] != 1 {
		t.Fatalf("got %d", res[0])
	}
}

func TestCallIndirectInlineSignature(t *testing.T) {
	src := `(module
	  (table (export "tbl") 1 funcref)
	  (elem (i32.const 0) $sq)
	  (func $sq (param i32) (result i32) local.get 0 local.get 0 i32.mul)
	  (func (export "apply") (param i32) (result i32)
	    local.get 0
	    i32.const 0
	    call_indirect (param i32) (result i32)))`
	res := run(t, src, "apply", 9)
	if res[0] != 81 {
		t.Fatalf("apply(9) = %d", res[0])
	}
	// The table's inline export must be present.
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternTable && e.Name == "tbl" {
			found = true
		}
	}
	if !found {
		t.Fatal("table inline export lost")
	}
}

func TestFoldedBlockAndLoop(t *testing.T) {
	src := `(module (func (export "f") (result i32)
	  (local $i i32) (local $s i32)
	  (block $done
	    (loop $top
	      (br_if $done (i32.ge_u (local.get $i) (i32.const 5)))
	      (local.set $s (i32.add (local.get $s) (i32.const 10)))
	      (local.set $i (i32.add (local.get $i) (i32.const 1)))
	      (br $top)))
	  (local.get $s)))`
	res := run(t, src, "f")
	if res[0] != 50 {
		t.Fatalf("folded loop sum = %d", res[0])
	}
}

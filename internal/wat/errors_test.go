package wat

import (
	"strings"
	"testing"
)

// TestBodyCompilerErrors exercises the immediate-parsing error branches of
// the function body compiler.
func TestBodyCompilerErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		substr string
	}{
		{"string in body", `(module (func "oops"))`, "string literal"},
		{"br_table no labels", `(module (func i32.const 0 br_table))`, "br_table"},
		{"call no target", `(module (func call))`, "function index"},
		{"local.get no index", `(module (func local.get))`, "needs an index"},
		{"global.get no index", `(module (func global.get))`, "index"},
		{"i32.const no value", `(module (func i32.const))`, "value"},
		{"i64.const no value", `(module (func i64.const))`, "value"},
		{"f32.const no value", `(module (func f32.const))`, "value"},
		{"f64.const no value", `(module (func f64.const))`, "value"},
		{"bad align", `(module (memory 1) (func (result i32) i32.const 0 i32.load align=3))`, "align"},
		{"bad offset", `(module (memory 1) (func (result i32) i32.const 0 i32.load offset=zz))`, "offset"},
		{"end without block", `(module (func end))`, "end without"},
		{"else without if", `(module (func else))`, "else outside"},
		{"unclosed block", `(module (func block))`, "unclosed"},
		{"folded else first", `(module (func (i32.add (else))))`, "folded form"},
		{"folded if no then", `(module (func (if (i32.const 1))))`, "(then ...)"},
		{"folded if junk after else", `(module (func (if (i32.const 1) (then) (else) (then))))`, "unexpected"},
		{"folded operand atom", `(module (func (i32.add i32.const 1 (i32.const 2))))`, ""},
		{"invalid label", `(module (func br zzz))`, "label"},
		{"bad local index", `(module (func local.get zzz))`, "local index"},
		{"type clause bad", `(module (type $t (global i32)))`, "signature"},
		{"elem bad offset", `(module (table 1 funcref) (elem (offset)))`, "offset"},
		{"data not string", `(module (memory 1) (data (i32.const 0) 42))`, "string"},
		{"start missing func", `(module (start $nope))`, "unknown function"},
		{"export desc malformed", `(module (export "x" (func)))`, "descriptor"},
		{"limits missing", `(module (memory))`, "limits"},
		{"table elem type", `(module (table 1 externref))`, "funcref"},
		{"mut malformed", `(module (global $g (mut) (i32.const 0)))`, "(mut"},
		{"named param multi type", `(module (func (param $a i32 i64)))`, "exactly one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("Compile(%q) succeeded", tc.src)
			}
			if tc.substr != "" && !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		`(module (; unterminated`,
		`(module (data (i32.const 0) "unterminated`,
		`(module (data (i32.const 0) "\q"))`,
		`(module (data (i32.const 0) "\u{zz}"))`,
		`(module (data (i32.const 0) "trailing\"`,
	}
	for _, src := range cases {
		if _, err := parseAll(src); err == nil {
			t.Errorf("parseAll(%q) succeeded", src)
		}
	}
}

func TestBlockResultVariants(t *testing.T) {
	// Empty (result) is tolerated as no result.
	src := `(module (func (export "f")
	  block (result) end))`
	if _, err := CompileToBinary(src); err != nil {
		t.Fatalf("empty result clause: %v", err)
	}
}

func TestFlatIfElseWithLabelRepetition(t *testing.T) {
	// The text format allows repeating the label on else/end.
	src := `(module (func (export "f") (param i32) (result i32)
	  local.get 0
	  if $l (result i32)
	    i32.const 1
	  else $l
	    i32.const 2
	  end $l))`
	res := run(t, src, "f", 1)
	if res[0] != 1 {
		t.Fatalf("then = %d", res[0])
	}
	res = run(t, src, "f", 0)
	if res[0] != 2 {
		t.Fatalf("else = %d", res[0])
	}
}

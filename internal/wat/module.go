package wat

import (
	"fmt"
	"strings"

	"waran/internal/wasm"
)

// Compile parses WAT source and assembles a decoded, unvalidated
// wasm.Module. Callers typically pass the result to wasm.Compile, which
// validates it.
func Compile(src string) (*wasm.Module, error) {
	nodes, err := parseAll(src)
	if err != nil {
		return nil, err
	}
	var fields []node
	if len(nodes) == 1 && nodes[0].head() == "module" {
		fields = nodes[0].list[1:]
	} else {
		fields = nodes
	}
	b := newModBuilder()
	if err := b.collect(fields); err != nil {
		return nil, err
	}
	if err := b.assemble(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// CompileToBinary compiles WAT source directly to the wasm binary format.
func CompileToBinary(src string) ([]byte, error) {
	m, err := Compile(src)
	if err != nil {
		return nil, err
	}
	if err := wasm.Validate(m); err != nil {
		return nil, err
	}
	return wasm.Encode(m)
}

type pendingFunc struct {
	node   *node
	typeIx uint32
	params []string // param names for local resolution ("" if unnamed)
	body   []node
	locals []wasm.ValType
	names  map[string]uint32 // local name -> index
}

type modBuilder struct {
	m           *wasm.Module
	typeNames   map[string]uint32
	funcNames   map[string]uint32
	globalNames map[string]uint32
	memNames    map[string]uint32
	tableNames  map[string]uint32
	numFuncs    int // imports + local, assigned so far
	sawLocalDef bool
	pending     []*pendingFunc
	elemNodes   []*node
	dataNodes   []*node
	startNode   *node
}

func newModBuilder() *modBuilder {
	return &modBuilder{
		m:           &wasm.Module{},
		typeNames:   map[string]uint32{},
		funcNames:   map[string]uint32{},
		globalNames: map[string]uint32{},
		memNames:    map[string]uint32{},
		tableNames:  map[string]uint32{},
	}
}

// internType returns the index of ft in the type section, adding it if new.
func (b *modBuilder) internType(ft wasm.FuncType) uint32 {
	for i, t := range b.m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	b.m.Types = append(b.m.Types, ft)
	return uint32(len(b.m.Types) - 1)
}

// collect does the first pass: walk fields in order, assign all indices and
// names, record bodies/segments for the second pass.
func (b *modBuilder) collect(fields []node) error {
	for i := range fields {
		f := &fields[i]
		if !f.isList() || len(f.list) == 0 {
			return errAt(f, "expected module field")
		}
		switch f.head() {
		case "type":
			if err := b.collectType(f); err != nil {
				return err
			}
		case "import":
			if err := b.collectImport(f); err != nil {
				return err
			}
		case "func":
			if err := b.collectFunc(f); err != nil {
				return err
			}
		case "memory":
			if err := b.collectMemory(f); err != nil {
				return err
			}
		case "table":
			if err := b.collectTable(f); err != nil {
				return err
			}
		case "global":
			if err := b.collectGlobal(f); err != nil {
				return err
			}
		case "export":
			if err := b.collectExport(f); err != nil {
				return err
			}
		case "start":
			b.startNode = f
		case "elem":
			b.elemNodes = append(b.elemNodes, f)
		case "data":
			b.dataNodes = append(b.dataNodes, f)
		default:
			return errAt(f, "unknown module field %q", f.head())
		}
	}
	return nil
}

func (b *modBuilder) collectType(f *node) error {
	items := f.list[1:]
	name := ""
	if len(items) > 0 && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom
		items = items[1:]
	}
	if len(items) != 1 || items[0].head() != "func" {
		return errAt(f, "type must contain a (func ...) signature")
	}
	ft, _, err := parseSignature(items[0].list[1:])
	if err != nil {
		return err
	}
	ix := uint32(len(b.m.Types))
	b.m.Types = append(b.m.Types, ft) // explicit types are not deduplicated
	if name != "" {
		if _, dup := b.typeNames[name]; dup {
			return errAt(f, "duplicate type name %s", name)
		}
		b.typeNames[name] = ix
	}
	return nil
}

func (b *modBuilder) collectImport(f *node) error {
	if b.sawLocalDef {
		return errAt(f, "imports must precede function definitions")
	}
	if len(f.list) != 4 || !f.list[1].isStr || !f.list[2].isStr {
		return errAt(f, `import needs "module" "name" (kind ...)`)
	}
	desc := &f.list[3]
	switch desc.head() {
	case "func":
		items := desc.list[1:]
		name := ""
		if len(items) > 0 && strings.HasPrefix(items[0].atom, "$") {
			name = items[0].atom
			items = items[1:]
		}
		tix, _, rest, err := b.parseTypeUse(items)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return errAt(desc, "unexpected tokens after import signature")
		}
		ix := uint32(b.numFuncs)
		b.numFuncs++
		if name != "" {
			if _, dup := b.funcNames[name]; dup {
				return errAt(f, "duplicate function name %s", name)
			}
			b.funcNames[name] = ix
		}
		b.m.Imports = append(b.m.Imports, wasm.Import{
			Module: f.list[1].str, Name: f.list[2].str,
			Kind: wasm.ExternFunc, TypeIx: tix,
		})
		return nil
	default:
		return errAt(desc, "only function imports are supported, got %q", desc.head())
	}
}

func (b *modBuilder) collectFunc(f *node) error {
	items := f.list[1:]
	name := ""
	if len(items) > 0 && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom
		items = items[1:]
	}
	ix := uint32(b.numFuncs)
	// Inline export abbreviations.
	for len(items) > 0 && items[0].head() == "export" {
		e := items[0]
		if len(e.list) != 2 || !e.list[1].isStr {
			return errAt(&e, `inline export needs a "name"`)
		}
		b.m.Exports = append(b.m.Exports, wasm.Export{Name: e.list[1].str, Kind: wasm.ExternFunc, Index: ix})
		items = items[1:]
	}
	// Inline import abbreviation.
	if len(items) > 0 && items[0].head() == "import" {
		if b.sawLocalDef {
			return errAt(f, "imports must precede function definitions")
		}
		im := items[0]
		if len(im.list) != 3 || !im.list[1].isStr || !im.list[2].isStr {
			return errAt(&im, `inline import needs "module" "name"`)
		}
		tix, _, rest, err := b.parseTypeUse(items[1:])
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return errAt(f, "imported function cannot have a body")
		}
		b.numFuncs++
		if name != "" {
			if _, dup := b.funcNames[name]; dup {
				return errAt(f, "duplicate function name %s", name)
			}
			b.funcNames[name] = ix
		}
		b.m.Imports = append(b.m.Imports, wasm.Import{
			Module: im.list[1].str, Name: im.list[2].str,
			Kind: wasm.ExternFunc, TypeIx: tix,
		})
		return nil
	}

	b.sawLocalDef = true
	b.numFuncs++
	if name != "" {
		if _, dup := b.funcNames[name]; dup {
			return errAt(f, "duplicate function name %s", name)
		}
		b.funcNames[name] = ix
	}
	tix, paramNames, rest, err := b.parseTypeUse(items)
	if err != nil {
		return err
	}
	pf := &pendingFunc{node: f, typeIx: tix, params: paramNames, names: map[string]uint32{}}
	for i, pn := range paramNames {
		if pn != "" {
			pf.names[pn] = uint32(i)
		}
	}
	// Locals.
	nLocals := len(paramNames)
	for len(rest) > 0 && rest[0].head() == "local" {
		l := rest[0]
		li := l.list[1:]
		if len(li) >= 2 && strings.HasPrefix(li[0].atom, "$") {
			vt, err := valTypeOf(&li[1])
			if err != nil {
				return err
			}
			pf.names[li[0].atom] = uint32(nLocals)
			pf.locals = append(pf.locals, vt)
			nLocals++
		} else {
			for j := range li {
				vt, err := valTypeOf(&li[j])
				if err != nil {
					return err
				}
				pf.locals = append(pf.locals, vt)
				nLocals++
			}
		}
		rest = rest[1:]
	}
	pf.body = rest
	b.m.Funcs = append(b.m.Funcs, tix)
	b.pending = append(b.pending, pf)
	return nil
}

func (b *modBuilder) collectMemory(f *node) error {
	items := f.list[1:]
	name := ""
	if len(items) > 0 && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom
		items = items[1:]
	}
	ix := uint32(len(b.m.Mems))
	for len(items) > 0 && items[0].head() == "export" {
		e := items[0]
		if len(e.list) != 2 || !e.list[1].isStr {
			return errAt(&e, `inline export needs a "name"`)
		}
		b.m.Exports = append(b.m.Exports, wasm.Export{Name: e.list[1].str, Kind: wasm.ExternMemory, Index: ix})
		items = items[1:]
	}
	lim, err := parseLimits(f, items)
	if err != nil {
		return err
	}
	b.m.Mems = append(b.m.Mems, wasm.MemoryType{Limits: lim})
	if name != "" {
		if _, dup := b.memNames[name]; dup {
			return errAt(f, "duplicate memory name %s", name)
		}
		b.memNames[name] = ix
	}
	return nil
}

func (b *modBuilder) collectTable(f *node) error {
	items := f.list[1:]
	name := ""
	if len(items) > 0 && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom
		items = items[1:]
	}
	for len(items) > 0 && items[0].head() == "export" {
		e := items[0]
		if len(e.list) != 2 || !e.list[1].isStr {
			return errAt(&e, `inline export needs a "name"`)
		}
		b.m.Exports = append(b.m.Exports, wasm.Export{
			Name: e.list[1].str, Kind: wasm.ExternTable, Index: uint32(len(b.m.Tables)),
		})
		items = items[1:]
	}
	if len(items) == 0 || items[len(items)-1].atom != "funcref" {
		return errAt(f, "table must have element type funcref")
	}
	lim, err := parseLimits(f, items[:len(items)-1])
	if err != nil {
		return err
	}
	ix := uint32(len(b.m.Tables))
	b.m.Tables = append(b.m.Tables, wasm.TableType{Elem: wasm.ValFuncref, Limits: lim})
	if name != "" {
		if _, dup := b.tableNames[name]; dup {
			return errAt(f, "duplicate table name %s", name)
		}
		b.tableNames[name] = ix
	}
	return nil
}

func (b *modBuilder) collectGlobal(f *node) error {
	items := f.list[1:]
	name := ""
	if len(items) > 0 && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom
		items = items[1:]
	}
	ix := uint32(len(b.m.Globals))
	for len(items) > 0 && items[0].head() == "export" {
		e := items[0]
		if len(e.list) != 2 || !e.list[1].isStr {
			return errAt(&e, `inline export needs a "name"`)
		}
		b.m.Exports = append(b.m.Exports, wasm.Export{Name: e.list[1].str, Kind: wasm.ExternGlobal, Index: ix})
		items = items[1:]
	}
	if len(items) != 2 {
		return errAt(f, "global needs a type and an initializer")
	}
	var gt wasm.GlobalType
	if items[0].head() == "mut" {
		if len(items[0].list) != 2 {
			return errAt(&items[0], "(mut <type>)")
		}
		vt, err := valTypeOf(&items[0].list[1])
		if err != nil {
			return err
		}
		gt = wasm.GlobalType{Type: vt, Mutable: true}
	} else {
		vt, err := valTypeOf(&items[0])
		if err != nil {
			return err
		}
		gt = wasm.GlobalType{Type: vt}
	}
	init, err := b.parseConstExpr(&items[1])
	if err != nil {
		return err
	}
	b.m.Globals = append(b.m.Globals, wasm.Global{Type: gt, Init: init})
	if name != "" {
		if _, dup := b.globalNames[name]; dup {
			return errAt(f, "duplicate global name %s", name)
		}
		b.globalNames[name] = ix
	}
	return nil
}

func (b *modBuilder) collectExport(f *node) error {
	if len(f.list) != 3 || !f.list[1].isStr {
		return errAt(f, `export needs "name" and a descriptor`)
	}
	desc := &f.list[2]
	if !desc.isList() || len(desc.list) != 2 {
		return errAt(desc, "export descriptor must be (kind index)")
	}
	var kind wasm.ExternKind
	var ix uint32
	var err error
	switch desc.head() {
	case "func":
		kind = wasm.ExternFunc
		ix, err = b.resolve(&desc.list[1], b.funcNames, "function")
	case "memory":
		kind = wasm.ExternMemory
		ix, err = b.resolve(&desc.list[1], b.memNames, "memory")
	case "table":
		kind = wasm.ExternTable
		ix, err = b.resolve(&desc.list[1], b.tableNames, "table")
	case "global":
		kind = wasm.ExternGlobal
		ix, err = b.resolve(&desc.list[1], b.globalNames, "global")
	default:
		return errAt(desc, "unknown export kind %q", desc.head())
	}
	if err != nil {
		return err
	}
	b.m.Exports = append(b.m.Exports, wasm.Export{Name: f.list[1].str, Kind: kind, Index: ix})
	return nil
}

// resolve turns a $name or numeric index node into an index.
func (b *modBuilder) resolve(n *node, names map[string]uint32, what string) (uint32, error) {
	if n.isStr || n.isList() {
		return 0, errAt(n, "expected %s index or $name", what)
	}
	if strings.HasPrefix(n.atom, "$") {
		ix, ok := names[n.atom]
		if !ok {
			return 0, errAt(n, "unknown %s %s", what, n.atom)
		}
		return ix, nil
	}
	v, err := parseI64(n.atom, 32)
	if err != nil {
		return 0, errAt(n, "invalid %s index %q", what, n.atom)
	}
	return uint32(v), nil
}

// parseTypeUse parses an optional (type ...) reference plus inline
// (param ...) / (result ...) clauses, returning the resolved type index and
// ordered parameter names.
func (b *modBuilder) parseTypeUse(items []node) (uint32, []string, []node, error) {
	var explicit *uint32
	if len(items) > 0 && items[0].head() == "type" {
		t := items[0]
		if len(t.list) != 2 {
			return 0, nil, nil, errAt(&t, "(type <index|$name>)")
		}
		ix, err := b.resolve(&t.list[1], b.typeNames, "type")
		if err != nil {
			return 0, nil, nil, err
		}
		explicit = &ix
		items = items[1:]
	}
	ft, names, err := parseSignature(items)
	if err != nil {
		return 0, nil, nil, err
	}
	rest := items
	for len(rest) > 0 && (rest[0].head() == "param" || rest[0].head() == "result") {
		rest = rest[1:]
	}
	if explicit != nil {
		if int(*explicit) >= len(b.m.Types) {
			return 0, nil, nil, fmt.Errorf("wat: type index %d out of range", *explicit)
		}
		declared := b.m.Types[*explicit]
		if len(ft.Params) > 0 || len(ft.Results) > 0 {
			if !declared.Equal(ft) {
				return 0, nil, nil, fmt.Errorf("wat: inline signature %s does not match (type %d) %s", ft, *explicit, declared)
			}
		}
		if len(names) == 0 {
			names = make([]string, len(declared.Params))
		}
		return *explicit, names, rest, nil
	}
	return b.internType(ft), names, rest, nil
}

// parseSignature parses leading (param ...) and (result ...) clauses.
func parseSignature(items []node) (wasm.FuncType, []string, error) {
	var ft wasm.FuncType
	var names []string
	i := 0
	for ; i < len(items) && items[i].head() == "param"; i++ {
		li := items[i].list[1:]
		if len(li) >= 2 && strings.HasPrefix(li[0].atom, "$") {
			vt, err := valTypeOf(&li[1])
			if err != nil {
				return ft, nil, err
			}
			if len(li) != 2 {
				return ft, nil, errAt(&items[i], "named param takes exactly one type")
			}
			ft.Params = append(ft.Params, vt)
			names = append(names, li[0].atom)
		} else {
			for j := range li {
				vt, err := valTypeOf(&li[j])
				if err != nil {
					return ft, nil, err
				}
				ft.Params = append(ft.Params, vt)
				names = append(names, "")
			}
		}
	}
	for ; i < len(items) && items[i].head() == "result"; i++ {
		li := items[i].list[1:]
		for j := range li {
			vt, err := valTypeOf(&li[j])
			if err != nil {
				return ft, nil, err
			}
			ft.Results = append(ft.Results, vt)
		}
	}
	return ft, names, nil
}

func valTypeOf(n *node) (wasm.ValType, error) {
	switch n.atom {
	case "i32":
		return wasm.ValI32, nil
	case "i64":
		return wasm.ValI64, nil
	case "f32":
		return wasm.ValF32, nil
	case "f64":
		return wasm.ValF64, nil
	case "funcref":
		return wasm.ValFuncref, nil
	default:
		return 0, errAt(n, "expected value type, got %q", n.atom)
	}
}

func parseLimits(f *node, items []node) (wasm.Limits, error) {
	if len(items) == 0 || len(items) > 2 {
		return wasm.Limits{}, errAt(f, "limits need min and optional max")
	}
	min, err := parseI64(items[0].atom, 32)
	if err != nil {
		return wasm.Limits{}, errAt(&items[0], "invalid limits minimum: %v", err)
	}
	l := wasm.Limits{Min: uint32(min)}
	if len(items) == 2 {
		max, err := parseI64(items[1].atom, 32)
		if err != nil {
			return wasm.Limits{}, errAt(&items[1], "invalid limits maximum: %v", err)
		}
		l.Max = uint32(max)
		l.HasMax = true
	}
	return l, nil
}

// parseConstExpr parses a folded constant initializer.
func (b *modBuilder) parseConstExpr(n *node) (wasm.ConstExpr, error) {
	if !n.isList() || len(n.list) < 1 {
		return wasm.ConstExpr{}, errAt(n, "expected constant expression")
	}
	switch n.head() {
	case "i32.const":
		v, err := parseI64(n.list[1].atom, 32)
		if err != nil {
			return wasm.ConstExpr{}, errAt(n, "%v", err)
		}
		return wasm.ConstExpr{Op: wasm.OpI32Const, Value: v}, nil
	case "i64.const":
		v, err := parseI64(n.list[1].atom, 64)
		if err != nil {
			return wasm.ConstExpr{}, errAt(n, "%v", err)
		}
		return wasm.ConstExpr{Op: wasm.OpI64Const, Value: v}, nil
	case "f32.const":
		v, err := parseF32(n.list[1].atom)
		if err != nil {
			return wasm.ConstExpr{}, errAt(n, "%v", err)
		}
		return wasm.ConstExpr{Op: wasm.OpF32Const, Value: uint64(f32bits(v))}, nil
	case "f64.const":
		v, err := parseF64(n.list[1].atom)
		if err != nil {
			return wasm.ConstExpr{}, errAt(n, "%v", err)
		}
		return wasm.ConstExpr{Op: wasm.OpF64Const, Value: f64bits(v)}, nil
	case "global.get":
		ix, err := b.resolve(&n.list[1], b.globalNames, "global")
		if err != nil {
			return wasm.ConstExpr{}, err
		}
		return wasm.ConstExpr{Op: wasm.OpGlobalGet, GlobalIx: ix}, nil
	default:
		return wasm.ConstExpr{}, errAt(n, "unsupported constant expression %q", n.head())
	}
}

// assemble performs the second pass: compile bodies and segments.
func (b *modBuilder) assemble() error {
	for _, pf := range b.pending {
		fc := &funcCompiler{mb: b, pf: pf}
		body, err := fc.compileBody()
		if err != nil {
			return err
		}
		b.m.Codes = append(b.m.Codes, wasm.Code{Locals: pf.locals, Body: body})
	}
	if b.startNode != nil {
		if len(b.startNode.list) != 2 {
			return errAt(b.startNode, "(start <func>)")
		}
		ix, err := b.resolve(&b.startNode.list[1], b.funcNames, "function")
		if err != nil {
			return err
		}
		b.m.Start = &ix
	}
	for _, en := range b.elemNodes {
		items := en.list[1:]
		if len(items) < 1 {
			return errAt(en, "elem needs an offset")
		}
		offNode := &items[0]
		if offNode.head() == "offset" {
			if len(offNode.list) != 2 {
				return errAt(offNode, "(offset <const>)")
			}
			offNode = &offNode.list[1]
		}
		off, err := b.parseConstExpr(offNode)
		if err != nil {
			return err
		}
		items = items[1:]
		if len(items) > 0 && items[0].atom == "func" {
			items = items[1:]
		}
		var es wasm.ElemSegment
		es.Offset = off
		for i := range items {
			fx, err := b.resolve(&items[i], b.funcNames, "function")
			if err != nil {
				return err
			}
			es.Funcs = append(es.Funcs, fx)
		}
		b.m.Elems = append(b.m.Elems, es)
	}
	for _, dn := range b.dataNodes {
		items := dn.list[1:]
		if len(items) < 1 {
			return errAt(dn, "data needs an offset")
		}
		offNode := &items[0]
		if offNode.head() == "offset" {
			if len(offNode.list) != 2 {
				return errAt(offNode, "(offset <const>)")
			}
			offNode = &offNode.list[1]
		}
		off, err := b.parseConstExpr(offNode)
		if err != nil {
			return err
		}
		var bytes []byte
		for _, s := range items[1:] {
			if !s.isStr {
				return errAt(&s, "data contents must be string literals")
			}
			bytes = append(bytes, s.str...)
		}
		b.m.Datas = append(b.m.Datas, wasm.DataSegment{Offset: off, Bytes: bytes})
	}
	return nil
}

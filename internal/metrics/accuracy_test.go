package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// p2Distributions are the shapes the streaming estimator must handle: the
// uniform and exponential cases bracket light/heavy tails, and the bimodal
// mixture stresses the parabolic marker adjustment with a density gap.
var p2Distributions = []struct {
	name string
	gen  func(r *rand.Rand) float64
}{
	{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1000 }},
	{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 100 }},
	{"bimodal", func(r *rand.Rand) float64 {
		if r.Float64() < 0.7 {
			return 50 + r.NormFloat64()*5
		}
		return 500 + r.NormFloat64()*20
	}},
}

// TestP2Accuracy compares the O(1) P² estimate against the exact quantile
// over 50k samples. The bound is relative error against the distribution's
// spread (p99-p1), which keeps it meaningful for shifted distributions.
func TestP2Accuracy(t *testing.T) {
	const n = 50000
	quantiles := []float64{0.5, 0.9, 0.99}
	for _, dist := range p2Distributions {
		for _, p := range quantiles {
			r := rand.New(rand.NewSource(42))
			est := NewP2(p)
			exact := &Quantile{}
			for i := 0; i < n; i++ {
				v := dist.gen(r)
				est.Add(v)
				exact.Add(v)
			}
			want := exact.Value(p)
			got := est.Value()
			spread := exact.Value(0.99) - exact.Value(0.01)
			if spread <= 0 {
				t.Fatalf("%s: degenerate spread %v", dist.name, spread)
			}
			relErr := math.Abs(got-want) / spread
			// P² is coarse on sharp density gaps; 5% of the spread is
			// still far more than the deadline plots need.
			if relErr > 0.05 {
				t.Errorf("%s p%.0f: P2=%.2f exact=%.2f relative error %.3f > 0.05",
					dist.name, p*100, got, want, relErr)
			}
		}
	}
}

// TestRateMeterFlush is the regression test for the partial-window bug:
// AddSlot only emits completed windows, so a run ending mid-window used to
// drop those bits entirely and bias MeanBps.
func TestRateMeterFlush(t *testing.T) {
	slot := time.Millisecond
	m := NewRateMeter(slot, 10*time.Millisecond)
	// One full window at 1000 bits/slot, then half a window at the same rate.
	for i := 0; i < 15; i++ {
		m.AddSlot(1000)
	}
	if got := len(m.Series()); got != 1 {
		t.Fatalf("pre-flush series length = %d, want 1 (partial window pending)", got)
	}
	m.Flush()
	series := m.Series()
	if len(series) != 2 {
		t.Fatalf("post-flush series length = %d, want 2", len(series))
	}
	last := series[1]
	if last.Time != 15*time.Millisecond {
		t.Errorf("flushed point time = %v, want 15ms", last.Time)
	}
	wantBps := 1000.0 / slot.Seconds() // steady rate, so the partial window matches
	if math.Abs(last.Bps-wantBps) > 1e-6 {
		t.Errorf("flushed Bps = %v, want %v", last.Bps, wantBps)
	}
	if math.Abs(m.MeanBps()-wantBps) > 1e-6 {
		t.Errorf("MeanBps = %v, want %v after flush", m.MeanBps(), wantBps)
	}
	// Flush is idempotent and a no-op on an empty window.
	m.Flush()
	if len(m.Series()) != 2 {
		t.Fatalf("second Flush appended a point")
	}
	m.AddSlot(500)
	m.Flush()
	if got := len(m.Series()); got != 3 {
		t.Fatalf("series length = %d after post-flush slot, want 3", got)
	}
}

package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestQuantileExactSmall(t *testing.T) {
	var q Quantile
	for _, v := range []float64{5, 1, 3, 2, 4} {
		q.Add(v)
	}
	if q.Count() != 5 {
		t.Fatalf("count = %d", q.Count())
	}
	if got := q.Value(0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := q.Value(1); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := q.Value(0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := q.Mean(); got != 3 {
		t.Errorf("mean = %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	var q Quantile
	q.Add(0)
	q.Add(10)
	if got := q.Value(0.25); got != 2.5 {
		t.Errorf("p25 = %v, want 2.5", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var q Quantile
	if q.Value(0.5) != 0 || q.Mean() != 0 || q.Count() != 0 {
		t.Fatal("empty accumulator should return zeros")
	}
}

func TestQuantileAddAfterQuery(t *testing.T) {
	var q Quantile
	q.Add(10)
	_ = q.Value(0.5)
	q.Add(1) // must re-sort
	if got := q.Value(0); got != 1 {
		t.Fatalf("min after re-add = %v", got)
	}
}

func TestQuantileReset(t *testing.T) {
	var q Quantile
	q.Add(5)
	q.Reset()
	if q.Count() != 0 || q.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
	q.Add(7)
	if q.Value(0.5) != 7 {
		t.Fatal("accumulator unusable after reset")
	}
}

func TestQuantileDuration(t *testing.T) {
	var q Quantile
	q.AddDuration(1500 * time.Microsecond)
	if got := q.Value(1); got != 1500 {
		t.Fatalf("duration in us = %v", got)
	}
}

// Property: Value is monotone in p and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var clean []float64
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var q Quantile
		for _, v := range clean {
			q.Add(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := q.Value(p)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return q.Value(0) == sorted[0] && q.Value(1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestP2ConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		est := NewP2(p)
		var exact Quantile
		for i := 0; i < 50_000; i++ {
			// Log-normal-ish latency distribution.
			v := math.Exp(rng.NormFloat64())
			est.Add(v)
			exact.Add(v)
		}
		want := exact.Value(p)
		got := est.Value()
		relErr := math.Abs(got-want) / want
		if relErr > 0.05 {
			t.Errorf("P2(p=%v) = %v vs exact %v (rel err %.3f)", p, got, want, relErr)
		}
	}
}

func TestP2SmallSampleCounts(t *testing.T) {
	est := NewP2(0.5)
	if est.Value() != 0 {
		t.Fatal("empty estimator should return 0")
	}
	est.Add(3)
	est.Add(1)
	if got := est.Value(); got != 1 && got != 3 {
		t.Fatalf("tiny-sample estimate = %v", got)
	}
	if est.Count() != 2 {
		t.Fatalf("count = %d", est.Count())
	}
}

func TestRateMeterWindows(t *testing.T) {
	m := NewRateMeter(time.Millisecond, 10*time.Millisecond)
	// 10 slots of 1000 bits = 1000 bits/ms = 1 Mb/s.
	for i := 0; i < 25; i++ {
		m.AddSlot(1000)
	}
	s := m.Series()
	if len(s) != 2 {
		t.Fatalf("windows = %d, want 2 (third incomplete)", len(s))
	}
	for _, p := range s {
		if p.Bps != 1e6 {
			t.Errorf("window rate = %v, want 1e6", p.Bps)
		}
	}
	if m.MeanBps() != 1e6 {
		t.Errorf("mean = %v", m.MeanBps())
	}
	if got := m.MeanBpsAfter(15 * time.Millisecond); got != 1e6 {
		t.Errorf("mean after = %v", got)
	}
	if got := m.MeanBpsAfter(time.Hour); got != 0 {
		t.Errorf("mean after end = %v", got)
	}
}

func TestRateMeterDefaultWindow(t *testing.T) {
	m := NewRateMeter(time.Millisecond, 0)
	for i := 0; i < 500; i++ {
		m.AddSlot(500)
	}
	if len(m.Series()) != 1 {
		t.Fatalf("default 500 ms window: %d windows", len(m.Series()))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestDeadlineMeter(t *testing.T) {
	m := NewDeadlineMeter(time.Millisecond)
	if m.Deadline() != time.Millisecond {
		t.Fatalf("deadline = %v", m.Deadline())
	}
	if m.Observe(200 * time.Microsecond) {
		t.Fatal("under-budget slot reported as overrun")
	}
	if !m.Observe(3 * time.Millisecond) {
		t.Fatal("over-budget slot not reported")
	}
	m.Observe(time.Microsecond)
	s := m.Stats()
	if s.Slots != 3 || s.Overruns != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Worst != 3*time.Millisecond {
		t.Fatalf("worst = %v", s.Worst)
	}
	if s.P99us <= 0 {
		t.Fatalf("p99 = %v", s.P99us)
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDeadlineMeterConcurrent(t *testing.T) {
	m := NewDeadlineMeter(time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(time.Duration(i) * 3 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := m.Stats()
	if s.Slots != 8000 {
		t.Fatalf("slots = %d", s.Slots)
	}
	// Slots above 1 ms: i in (333, 1000) per goroutine.
	if s.Overruns != 8*666 {
		t.Fatalf("overruns = %d, want %d", s.Overruns, 8*666)
	}
	if s.Worst != 2997*time.Microsecond {
		t.Fatalf("worst = %v", s.Worst)
	}
}

// Package metrics provides the measurement accumulators the experiment
// harness uses: exact and streaming (P²) quantile estimation standing in
// for the Boost Accumulators the paper uses for Fig. 5d, plus windowed rate
// meters for bitrate-over-time plots (Fig. 5a/5b).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Quantile is an exact quantile accumulator: it stores every sample. Use it
// when the sample count is bounded (one entry per scheduler invocation).
type Quantile struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (q *Quantile) Add(v float64) {
	q.samples = append(q.samples, v)
	q.sum += v
	q.sorted = false
}

// AddDuration records a duration in microseconds, the unit of Fig. 5d.
func (q *Quantile) AddDuration(d time.Duration) {
	q.Add(float64(d.Nanoseconds()) / 1e3)
}

// Count returns the number of recorded samples.
func (q *Quantile) Count() int { return len(q.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (q *Quantile) Mean() float64 {
	if len(q.samples) == 0 {
		return 0
	}
	return q.sum / float64(len(q.samples))
}

// Value returns the p-quantile (p in [0,1]) using nearest-rank
// interpolation, or 0 with no samples.
func (q *Quantile) Value(p float64) float64 {
	if len(q.samples) == 0 {
		return 0
	}
	if !q.sorted {
		sort.Float64s(q.samples)
		q.sorted = true
	}
	if p <= 0 {
		return q.samples[0]
	}
	if p >= 1 {
		return q.samples[len(q.samples)-1]
	}
	pos := p * float64(len(q.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return q.samples[lo]
	}
	frac := pos - float64(lo)
	return q.samples[lo]*(1-frac) + q.samples[hi]*frac
}

// Max returns the largest sample.
func (q *Quantile) Max() float64 { return q.Value(1) }

// Min returns the smallest sample.
func (q *Quantile) Min() float64 { return q.Value(0) }

// Reset discards all samples.
func (q *Quantile) Reset() {
	q.samples = q.samples[:0]
	q.sum = 0
	q.sorted = false
}

// String summarises the distribution.
func (q *Quantile) String() string {
	return fmt.Sprintf("n=%d p50=%.1f p99=%.1f max=%.1f", q.Count(), q.Value(0.5), q.Value(0.99), q.Max())
}

// P2 is the Jain & Chlamtac P² streaming estimator for one quantile: O(1)
// memory regardless of stream length. Used where the exact accumulator
// would be too heavy (long-running gNB processes).
type P2 struct {
	p     float64
	n     int
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions
	want  [5]float64 // desired positions
	dWant [5]float64 // desired position increments
	init  []float64
}

// NewP2 creates an estimator for the p-quantile (0 < p < 1).
func NewP2(p float64) *P2 {
	e := &P2{p: p}
	e.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add records one sample.
func (e *P2) Add(v float64) {
	if e.n < 5 {
		e.init = append(e.init, v)
		e.n++
		if e.n == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.n++
	// Find cell k containing v and update extreme markers.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dWant[i]
	}
	// Adjust interior markers with the parabolic formula.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := math.Copysign(1, d)
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate.
func (e *P2) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		tmp := append([]float64(nil), e.init...)
		sort.Float64s(tmp)
		ix := int(e.p * float64(len(tmp)-1))
		return tmp[ix]
	}
	return e.q[2]
}

// Count returns the number of samples seen.
func (e *P2) Count() int { return e.n }

// RateMeter turns per-slot bit deliveries into a bitrate time series with a
// configurable averaging window, matching the paper's Mb/s-over-seconds
// plots.
type RateMeter struct {
	slotDur time.Duration
	window  time.Duration
	current int64 // bits in the open window
	inWin   time.Duration
	series  []RatePoint
}

// RatePoint is one averaged sample of a rate series.
type RatePoint struct {
	Time time.Duration
	Bps  float64
}

// NewRateMeter creates a meter averaging over window (default 500 ms).
func NewRateMeter(slotDur, window time.Duration) *RateMeter {
	if window == 0 {
		window = 500 * time.Millisecond
	}
	return &RateMeter{slotDur: slotDur, window: window}
}

// AddSlot records the bits delivered in one slot.
func (r *RateMeter) AddSlot(bits int64) {
	r.current += bits
	r.inWin += r.slotDur
	if r.inWin >= r.window {
		t := time.Duration(len(r.series)+1) * r.window
		r.series = append(r.series, RatePoint{
			Time: t,
			Bps:  float64(r.current) / r.inWin.Seconds(),
		})
		r.current = 0
		r.inWin = 0
	}
}

// Flush closes the open partial window, if any, emitting it as a final
// RatePoint averaged over the time actually accumulated. Without this,
// short runs silently drop up to one window of delivered bits and bias
// MeanBps. Call once, after the last AddSlot.
func (r *RateMeter) Flush() {
	if r.inWin <= 0 {
		return
	}
	t := time.Duration(len(r.series))*r.window + r.inWin
	r.series = append(r.series, RatePoint{
		Time: t,
		Bps:  float64(r.current) / r.inWin.Seconds(),
	})
	r.current = 0
	r.inWin = 0
}

// Series returns the completed windows so far.
func (r *RateMeter) Series() []RatePoint { return r.series }

// MeanBps averages the entire series.
func (r *RateMeter) MeanBps() float64 {
	if len(r.series) == 0 {
		return 0
	}
	var s float64
	for _, p := range r.series {
		s += p.Bps
	}
	return s / float64(len(r.series))
}

// MeanBpsAfter averages the series points strictly after t, useful for
// skipping warm-up transients.
func (r *RateMeter) MeanBpsAfter(t time.Duration) float64 {
	var s float64
	n := 0
	for _, p := range r.series {
		if p.Time > t {
			s += p.Bps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// DeadlineMeter tracks per-slot execution time against a hard deadline (the
// paper's 1 ms slot budget, §4A/§5). It is safe for concurrent use — the
// cell-group slot engine feeds it from its worker goroutines — and keeps
// O(1) state: counts, the worst observation, and a streaming P99.
type DeadlineMeter struct {
	mu       sync.Mutex
	deadline time.Duration
	slots    uint64
	overruns uint64
	worst    time.Duration
	p99      *P2 // microseconds
}

// NewDeadlineMeter creates a meter for the given per-slot deadline.
func NewDeadlineMeter(deadline time.Duration) *DeadlineMeter {
	return &DeadlineMeter{deadline: deadline, p99: NewP2(0.99)}
}

// Deadline returns the configured budget.
func (m *DeadlineMeter) Deadline() time.Duration { return m.deadline }

// Observe records one slot's execution time and reports whether it overran
// the deadline.
func (m *DeadlineMeter) Observe(d time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.slots++
	m.p99.Add(float64(d.Nanoseconds()) / 1e3)
	if d > m.worst {
		m.worst = d
	}
	if m.deadline > 0 && d > m.deadline {
		m.overruns++
		return true
	}
	return false
}

// DeadlineStats is the flat snapshot of a DeadlineMeter. Durations
// marshal as nanoseconds, matching time.Duration's JSON encoding.
type DeadlineStats struct {
	Deadline time.Duration `json:"deadline_ns"`
	Slots    uint64        `json:"slots"`
	Overruns uint64        `json:"overruns"`
	Worst    time.Duration `json:"worst_ns"`
	P99us    float64       `json:"p99_us"`
}

// Stats returns current accounting.
func (m *DeadlineMeter) Stats() DeadlineStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return DeadlineStats{
		Deadline: m.deadline,
		Slots:    m.slots,
		Overruns: m.overruns,
		Worst:    m.worst,
		P99us:    m.p99.Value(),
	}
}

// String summarises the meter.
func (m *DeadlineMeter) String() string {
	s := m.Stats()
	return fmt.Sprintf("slots=%d overruns=%d worst=%v p99=%.1fus deadline=%v",
		s.Slots, s.Overruns, s.Worst, s.P99us, s.Deadline)
}

// Counter is a monotonically increasing event counter, safe for concurrent
// use: the E2 association layer increments these from supervisor, receive
// and slot-loop goroutines at once.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Command gnb runs a WA-RAN gNB: a slot-clocked sliced MAC whose intra-slice
// schedulers are Wasm plugins, optionally exposing an E2-lite agent so a
// near-RT RIC (cmd/ric) can observe and control it.
//
// Usage:
//
//	gnb -slices "mt:3M,rr:12M,pf:15M" -ues-per-slice 3 -duration 10s
//	gnb -e2 127.0.0.1:36421 -codec binary -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/metrics"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/ric"
	"waran/internal/wabi"
)

func main() {
	slices := flag.String("slices", "mt:3M,rr:12M,pf:15M", "comma list of scheduler:targetRate per slice")
	uesPerSlice := flag.Int("ues-per-slice", 3, "UEs attached to each slice")
	duration := flag.Duration("duration", 10*time.Second, "simulated run length")
	e2Addr := flag.String("e2", "", "RIC address for the E2 agent (empty = standalone)")
	codecName := flag.String("codec", "binary", "E2 codec: binary, json, varint")
	shim := flag.Bool("widen-shim", false, "wrap the E2 codec in the 8->12-bit vendor adaptation plugin")
	liveness := flag.Duration("e2-liveness", 500*time.Millisecond, "declare the RIC dead after this much E2 silence (0 disables)")
	realtime := flag.Bool("realtime", false, "pace slots at wall-clock slot duration")
	flag.Parse()

	if err := run(*slices, *uesPerSlice, *duration, *e2Addr, *codecName, *shim, *liveness, *realtime); err != nil {
		fmt.Fprintln(os.Stderr, "gnb:", err)
		os.Exit(1)
	}
}

func run(sliceSpec string, uesPerSlice int, duration time.Duration, e2Addr, codecName string, shim bool, liveness time.Duration, realtime bool) error {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("cell: %d PRBs, %v slots, peak %.1f Mb/s at MCS 28\n",
		gnb.Cell.PRBs, gnb.Cell.SlotDuration, gnb.Cell.PeakRateBps(28)/1e6)

	meters := map[uint32]*metrics.RateMeter{}
	ueID := uint32(1)
	for i, part := range strings.Split(sliceSpec, ",") {
		name, rate, err := parseSlice(part)
		if err != nil {
			return err
		}
		plugin, err := core.NewPluginScheduler(name, wabi.Policy{})
		if err != nil {
			return err
		}
		id := uint32(i + 1)
		if _, err := gnb.Slices.AddSlice(id, fmt.Sprintf("slice-%d(%s)", id, name), rate, plugin, nil); err != nil {
			return err
		}
		for k := 0; k < uesPerSlice; k++ {
			mcs := 22 + (k*6)/max(1, uesPerSlice-1)
			ue := ran.NewUE(ueID, id, mcs)
			ue.Traffic = ran.NewCBR(1.4 * rate / float64(uesPerSlice))
			if err := gnb.AttachUE(ue); err != nil {
				return err
			}
			ueID++
		}
		meters[id] = metrics.NewRateMeter(gnb.Cell.SlotDuration, time.Second)
		fmt.Printf("slice %d: %s scheduler (Wasm plugin), target %.1f Mb/s, %d UEs\n",
			id, name, rate/1e6, uesPerSlice)
	}

	// The E2 side runs under a supervisor: if the RIC is unreachable or
	// the association dies mid-run, the gNB keeps scheduling on its native
	// configuration while the session reconnects with backoff.
	var sess *ric.AgentSession
	var assoc *ric.AssocMetrics
	if e2Addr != "" {
		codec, err := buildCodec(codecName, shim)
		if err != nil {
			return err
		}
		assoc = &ric.AssocMetrics{}
		sess = &ric.AgentSession{
			Dial:            func() (*e2.Conn, error) { return e2.Dial(e2Addr, codec) },
			RAN:             gnb,
			Cell:            1,
			LivenessTimeout: liveness,
			Metrics:         assoc,
		}
		sess.Start()
		defer sess.Stop()
		fmt.Printf("E2 agent supervising association to RIC at %s (codec %s, liveness %v)\n",
			e2Addr, codec.Name(), liveness)
	}

	slots := core.SlotsForDuration(gnb.Cell, duration)
	start := time.Now()
	for slot := 0; slot < slots; slot++ {
		r := gnb.Step()
		for id, ss := range r.PerSlice {
			meters[id].AddSlot(ss.Bits)
		}
		if sess != nil {
			sess.Tick(uint64(slot))
		}
		if realtime {
			next := start.Add(time.Duration(slot+1) * gnb.Cell.SlotDuration)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}

	fmt.Printf("\nran %d slots in %v\n", slots, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-16s %12s %12s %10s\n", "slice", "target Mb/s", "mean Mb/s", "fallbacks")
	for _, s := range gnb.Slices.Slices() {
		st := s.Stats()
		fmt.Printf("%-16s %12.2f %12.2f %10d\n",
			s.Name, s.TargetRate()/1e6, meters[s.ID].MeanBpsAfter(time.Second)/1e6, st.FallbackSlots)
	}
	if sess != nil {
		ind, ok, fail, resub := sess.Counters()
		fmt.Printf("e2: %d indications sent, %d controls applied, %d refused, %d resubscribes\n",
			ind, ok, fail, resub)
		snap := assoc.Snapshot()
		fmt.Printf("e2: %d associations, %d reconnects, %d dropped indications, degraded %.1f ms\n",
			sess.Associations(), snap.Reconnects, snap.DroppedIndications, snap.DegradedMs)
	}
	return nil
}

func parseSlice(part string) (string, float64, error) {
	name, rateStr, found := strings.Cut(strings.TrimSpace(part), ":")
	if !found {
		return "", 0, fmt.Errorf("bad slice spec %q (want scheduler:rate)", part)
	}
	rate, err := parseRate(rateStr)
	if err != nil {
		return "", 0, err
	}
	if _, ok := plugins.SchedulerWAT(name); !ok {
		return "", 0, fmt.Errorf("unknown scheduler %q (want rr, pf or mt)", name)
	}
	return name, rate, nil
}

func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(strings.TrimSuffix(s, "k"), "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q: %w", s, err)
	}
	return v * mult, nil
}

func buildCodec(name string, shim bool) (e2.Codec, error) {
	codec, ok := e2.CodecByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown codec %q", name)
	}
	if !shim {
		return codec, nil
	}
	return ric.NewPluginCodecWAT("widen8to12", plugins.Widen8To12CommWAT, codec)
}

// Command gnb runs a WA-RAN gNB: one or more slot-clocked sliced MAC cells
// whose intra-slice schedulers are Wasm plugins drawn from a shared
// instance pool, optionally exposing an E2-lite agent so a near-RT RIC
// (cmd/ric) can observe and control it, and optionally serving live
// observability over HTTP.
//
// Usage:
//
//	gnb -slices "mt:3M,rr:12M,pf:15M" -ues-per-slice 3 -duration 10s
//	gnb -cells 4 -http 127.0.0.1:9091 -duration 30s
//	gnb -e2 127.0.0.1:36421 -codec binary -duration 30s
//
// With -http set, the gNB serves while it runs:
//
//	curl http://127.0.0.1:9091/metrics        # Prometheus text exposition
//	curl http://127.0.0.1:9091/debug/slots    # last slot traces as JSON
//	go tool pprof http://127.0.0.1:9091/debug/pprof/profile
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/metrics"
	"waran/internal/obs"
	"waran/internal/obs/flight"
	"waran/internal/obs/trace"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/ric"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

func main() {
	cfg := gnbConfig{}
	flag.StringVar(&cfg.sliceSpec, "slices", "mt:3M,rr:12M,pf:15M", "comma list of scheduler:targetRate per slice")
	flag.IntVar(&cfg.uesPerSlice, "ues-per-slice", 3, "UEs attached to each slice (per cell)")
	flag.IntVar(&cfg.cells, "cells", 1, "number of cells stepped by the shared slot clock")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "simulated run length")
	flag.StringVar(&cfg.e2Addr, "e2", "", "RIC address for the E2 agent (empty = standalone)")
	flag.StringVar(&cfg.codecName, "codec", "binary", "E2 codec: binary, json, varint")
	flag.BoolVar(&cfg.shim, "widen-shim", false, "wrap the E2 codec in the 8->12-bit vendor adaptation plugin")
	flag.DurationVar(&cfg.liveness, "e2-liveness", 500*time.Millisecond, "declare the RIC dead after this much E2 silence (0 disables)")
	flag.BoolVar(&cfg.realtime, "realtime", false, "pace slots at wall-clock slot duration")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve /metrics, /debug/slots and pprof on this address (empty = off)")
	flag.BoolVar(&cfg.traceOn, "trace", false, "enable control-loop span tracing and the wasm fuel profiler (served at /debug/trace and /debug/wasm/profile)")
	flag.BoolVar(&cfg.fullJitter, "e2-fulljitter", false, "draw reconnect delays uniformly from [0, ceiling) instead of +/-20% jitter (spreads fleet-wide reconnect storms, DESIGN.md 17)")
	flag.Int64Var(&cfg.e2Seed, "e2-seed", 0, "reconnect jitter schedule seed (0 = unique per process)")
	flag.BoolVar(&cfg.flightOn, "flight", false, "arm the flight recorder: always-on incident journal, SLO burn-rate detectors, anomaly-triggered diagnostic bundles (served at /debug/flight, DESIGN.md 18)")
	flag.StringVar(&cfg.flightDir, "flight-dir", "flight-bundles", "directory anomaly-triggered diagnostic bundles are written into")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gnb:", err)
		os.Exit(1)
	}
}

// gnbConfig is the binary's full knob set, one struct so tests can drive
// run() exactly as main does.
type gnbConfig struct {
	sliceSpec   string
	uesPerSlice int
	cells       int
	duration    time.Duration
	e2Addr      string
	codecName   string
	shim        bool
	liveness    time.Duration
	realtime    bool
	httpAddr    string
	traceOn     bool
	fullJitter  bool
	e2Seed      int64
	flightOn    bool
	flightDir   string

	// onReady (tests) fires once the HTTP listener is serving, with its
	// resolved address. afterRun (tests) fires after the slot loop and
	// final report, while the HTTP server is still up.
	onReady  func(addr string)
	afterRun func()
}

// traceDepth is how many slot events the live /debug/slots ring keeps.
const traceDepth = 512

// spanDepth is each plane's span-ring capacity when -trace is on.
const spanDepth = 8192

// flightDepth is the flight recorder's journal ring capacity when -flight
// is on: deep enough to hold minutes of rare-edge events, fixed so the
// recorder's memory never grows with incident length.
const flightDepth = 4096

// slotMissObjective is the gNB's slot deadline-miss SLO: at most 1% of
// slots may overrun their budget before the burn-rate detector pages.
const slotMissObjective = 0.01

func run(cfg gnbConfig) error {
	if cfg.cells <= 0 {
		cfg.cells = 1
	}
	cg, err := core.NewCellGroup(ran.CellConfig{}, core.CellGroupConfig{Cells: cfg.cells})
	if err != nil {
		return err
	}
	gnb := cg.Cell(0)
	fmt.Printf("cells: %d x (%d PRBs, %v slots, peak %.1f Mb/s at MCS 28)\n",
		cfg.cells, gnb.Cell.PRBs, gnb.Cell.SlotDuration, gnb.Cell.PeakRateBps(28)/1e6)

	// Every slice runs a pool-backed Wasm scheduler shared across cells:
	// one compiled module, up to one sandbox instance per cell.
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(traceDepth)
	var tracer *trace.Tracer
	var profile *wasm.Profile
	if cfg.traceOn {
		tracer = trace.NewTracer(spanDepth)
		profile = wasm.NewProfile()
		// The profiler must be in the group env before any scheduler pool
		// is built below.
		cg.PluginEnv = wabi.Env{Profile: profile}
	}
	// The flight recorder journals slot deadline misses and fallback pins
	// from the hot loop (rare edges only: a clean slot records nothing),
	// feeds the slot-miss SLO's burn-rate detector, and captures a
	// diagnostic bundle when a detector fires or a fallback pins.
	var frec *flight.Recorder
	var fdet *flight.DetectorSet
	var fcap *flight.Capturer
	var slotsStepped atomic.Uint64 // metric-exempt: SLO source, scraped via the detector
	if cfg.flightOn {
		frec = flight.NewRecorder(flightDepth)
		cg.SetFlightRecorder(frec)
		frec.Register(reg)
		fdet = flight.NewDetectorSet(frec)
		fdet.MustAdd(flight.SLO{
			Name:      "slot-deadline-miss",
			Objective: slotMissObjective,
			Bad:       func() uint64 { return frec.Count(flight.EvSlotDeadlineMiss) },
			Total:     slotsStepped.Load,
		}, flight.DetectorConfig{})
		frec.SetTriggers(flight.EvDetectorFire, flight.EvFallbackPin, flight.EvRollback, flight.EvBreakerOpen)
		ccfg := flight.CapturerConfig{Dir: cfg.flightDir, Registry: reg, Detectors: fdet, Tracer: tracer}
		if profile != nil {
			ccfg.Profile = profile
		}
		var err error
		fcap, err = flight.NewCapturer(frec, ccfg)
		if err != nil {
			return err
		}
		flightStop := make(chan struct{})
		defer close(flightStop)
		go fcap.Run(flightStop)
		go fdet.Run(flightStop, time.Second)
		fmt.Printf("flight recorder: %d-event journal, slot-miss SLO %.1f%%, bundles -> %s\n",
			frec.Cap(), slotMissObjective*100, cfg.flightDir)
	}

	meters := map[uint32]*metrics.RateMeter{}
	for i, part := range strings.Split(cfg.sliceSpec, ",") {
		name, rate, err := parseSlice(part)
		if err != nil {
			return err
		}
		id := uint32(i + 1)
		for c := 0; c < cfg.cells; c++ {
			cell := cg.Cell(c)
			sliceName := fmt.Sprintf("slice-%d(%s)", id, name)
			if _, err := cell.Slices.AddSlice(id, sliceName, rate, sched.RoundRobin{}, nil); err != nil {
				return err
			}
			for k := 0; k < cfg.uesPerSlice; k++ {
				mcs := 22 + (k*6)/max(1, cfg.uesPerSlice-1)
				ue := ran.NewUE(uint32(i*cfg.uesPerSlice+k+1), id, mcs)
				ue.Traffic = ran.NewCBR(1.4 * rate / float64(cfg.uesPerSlice))
				if err := cell.AttachUE(ue); err != nil {
					return err
				}
			}
		}
		ps, err := cg.InstallPooledScheduler(id, name, wabi.Policy{}, cfg.cells)
		if err != nil {
			return err
		}
		sliceLabel := obs.L("slice", strconv.FormatUint(uint64(id), 10))
		ps.Register(reg, sliceLabel)
		ps.Pool().Register(reg, sliceLabel)
		meters[id] = metrics.NewRateMeter(gnb.Cell.SlotDuration, time.Second)
		fmt.Printf("slice %d: %s scheduler (pooled Wasm plugin), target %.1f Mb/s, %d UEs per cell\n",
			id, name, rate/1e6, cfg.uesPerSlice)
	}
	cg.EnableObservability(reg, ring)
	if tracer != nil {
		cg.EnableTracing(tracer)
		fmt.Println("tracing: control-loop spans + wasm fuel profiler enabled")
	}

	// The E2 side runs under a supervisor: if the RIC is unreachable or
	// the association dies mid-run, the gNB keeps scheduling on its native
	// configuration while the session reconnects with backoff.
	var sess *ric.AgentSession
	var assoc *ric.AssocMetrics
	if cfg.e2Addr != "" {
		codec, err := buildCodec(cfg.codecName, cfg.shim)
		if err != nil {
			return err
		}
		assoc = &ric.AssocMetrics{}
		assoc.Register(reg)
		sess, err = ric.NewAgentSession(ric.AgentSessionConfig{
			Dial:    func() (*e2.Conn, error) { return e2.Dial(cfg.e2Addr, codec) },
			RAN:     gnb,
			Agent:   ric.AgentConfig{Cell: 1, LivenessTimeout: cfg.liveness, Tracer: tracer},
			Backoff: ric.Backoff{FullJitter: cfg.fullJitter},
			Seed:    cfg.e2Seed,
			Metrics: assoc,
		})
		if err != nil {
			return err
		}
		sess.Start()
		defer sess.Stop()
		fmt.Printf("E2 agent supervising association to RIC at %s (codec %s, liveness %v)\n",
			cfg.e2Addr, codec.Name(), cfg.liveness)
	}

	if cfg.httpAddr != "" {
		lis, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return err
		}
		var opts []obs.MuxOption
		if tracer != nil {
			opts = append(opts, obs.WithTracer(tracer), obs.WithWasmProfile(profile))
		}
		if frec != nil {
			opts = append(opts, flight.MuxOption(frec, fdet, fcap))
		}
		srv := &http.Server{Handler: obs.NewMux(reg, ring, opts...)}
		go srv.Serve(lis)
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics /debug/slots /debug/pprof\n", lis.Addr())
		if tracer != nil {
			fmt.Printf("tracing: http://%s/debug/trace /debug/wasm/profile\n", lis.Addr())
		}
		if frec != nil {
			fmt.Printf("flight: http://%s/debug/flight /debug/flight/journal /debug/flight/bundle\n", lis.Addr())
		}
		if cfg.onReady != nil {
			cfg.onReady(lis.Addr().String())
		}
	}

	slots := core.SlotsForDuration(gnb.Cell, cfg.duration)
	start := time.Now()
	for slot := 0; slot < slots; slot++ {
		results := cg.StepAll()
		slotsStepped.Add(1)
		for id, ss := range results[0].PerSlice {
			meters[id].AddSlot(ss.Bits)
		}
		if sess != nil {
			sess.Tick(uint64(slot))
		}
		if cfg.realtime {
			next := start.Add(time.Duration(slot+1) * gnb.Cell.SlotDuration)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}

	fmt.Printf("\nran %d slots x %d cells in %v\n", slots, cfg.cells, time.Since(start).Round(time.Millisecond))
	watch := cg.WatchdogStats()[0]
	fmt.Printf("cell 0 slot wall time: p99 %.1f us, worst %.1f us, %d overruns of the %v budget\n",
		watch.P99us, float64(watch.Worst.Nanoseconds())/1e3, watch.Overruns, watch.Deadline)
	fmt.Printf("%-16s %12s %12s %10s\n", "slice (cell 0)", "target Mb/s", "mean Mb/s", "fallbacks")
	for _, s := range gnb.Slices.Slices() {
		st := s.Stats()
		meters[s.ID].Flush() // close the final partial window before reading
		fmt.Printf("%-16s %12.2f %12.2f %10d\n",
			s.Name, s.TargetRate()/1e6, meters[s.ID].MeanBpsAfter(time.Second)/1e6, st.FallbackSlots)
	}
	if sess != nil {
		ind, ok, fail, resub := sess.Counters()
		fmt.Printf("e2: %d indications sent, %d controls applied, %d refused, %d resubscribes\n",
			ind, ok, fail, resub)
		snap := assoc.Stats()
		fmt.Printf("e2: %d associations, %d reconnects, %d dropped indications, degraded %.1f ms\n",
			sess.Associations(), snap.Reconnects, snap.DroppedIndications, snap.DegradedMs)
	}
	if frec != nil {
		fmt.Printf("flight: %d events journaled, %d diagnostic bundles in %s\n",
			frec.Seq(), len(fcap.Index()), cfg.flightDir)
	}
	if cfg.afterRun != nil {
		cfg.afterRun()
	}
	return nil
}

func parseSlice(part string) (string, float64, error) {
	name, rateStr, found := strings.Cut(strings.TrimSpace(part), ":")
	if !found {
		return "", 0, fmt.Errorf("bad slice spec %q (want scheduler:rate)", part)
	}
	rate, err := parseRate(rateStr)
	if err != nil {
		return "", 0, err
	}
	if _, ok := plugins.SchedulerWAT(name); !ok {
		return "", 0, fmt.Errorf("unknown scheduler %q (want rr, pf or mt)", name)
	}
	return name, rate, nil
}

func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(strings.TrimSuffix(s, "k"), "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q: %w", s, err)
	}
	return v * mult, nil
}

func buildCodec(name string, shim bool) (e2.Codec, error) {
	codec, ok := e2.CodecByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown codec %q", name)
	}
	if !shim {
		return codec, nil
	}
	return ric.NewPluginCodecWAT("widen8to12", plugins.Widen8To12CommWAT, codec)
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"waran/internal/e2"
	"waran/internal/obs"
	"waran/internal/plugins"
	"waran/internal/ric"
	"waran/internal/wabi"
)

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"3M", 3e6, true},
		{"12M", 12e6, true},
		{"1.5G", 1.5e9, true},
		{"500k", 5e5, true},
		{"500K", 5e5, true},
		{"1000", 1000, true},
		{"", 0, false},
		{"abcM", 0, false},
	}
	for _, tc := range cases {
		got, err := parseRate(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseRate(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseRate(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseSlice(t *testing.T) {
	name, rate, err := parseSlice(" pf:15M ")
	if err != nil || name != "pf" || rate != 15e6 {
		t.Fatalf("got %q %v %v", name, rate, err)
	}
	if _, _, err := parseSlice("pf"); err == nil {
		t.Fatal("missing rate accepted")
	}
	if _, _, err := parseSlice("bogus:1M"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestBuildCodec(t *testing.T) {
	c, err := buildCodec("binary", false)
	if err != nil || c.Name() != "binary" {
		t.Fatalf("got %v %v", c, err)
	}
	shimmed, err := buildCodec("varint", true)
	if err != nil {
		t.Fatal(err)
	}
	if shimmed.Name() != "varint+plugin:widen8to12" {
		t.Fatalf("shimmed codec = %q", shimmed.Name())
	}
	if _, err := buildCodec("asn1", false); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestStandaloneRunSmoke drives the whole binary path for a short run.
func TestStandaloneRunSmoke(t *testing.T) {
	cfg := gnbConfig{
		sliceSpec:   "mt:2M,rr:4M",
		uesPerSlice: 2,
		duration:    200 * time.Millisecond,
		codecName:   "binary",
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestServeObservabilityE2E runs a 2-cell gNB with an E2 association to an
// in-process RIC for >= 1000 slots, scraping /metrics and /debug/slots over
// HTTP while the server is still up, and asserts every instrument class of
// the observability layer is present: slot latency, fuel, scheduler calls,
// pool, module cache, deadline watchdog, and E2 association counters.
func TestServeObservabilityE2E(t *testing.T) {
	// In-process near-RT RIC on a loopback listener.
	r := ric.MustNew(ric.Config{ReportPeriodMs: 10})
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		t.Fatal(err)
	}
	lis, err := e2.Listen("127.0.0.1:0", e2.BinaryCodec{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	ricDone := make(chan struct{})
	ricSess, err := ric.NewSession(ric.SessionConfig{RIC: r, Connect: lis.Accept})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(ricDone)
		ricSess.Run(stop)
	}()
	defer func() {
		close(stop)
		lis.Close()
		<-ricDone
	}()

	const slots = 1100 // 1 ms slots -> 1.1 s simulated
	var httpAddr, metricsText, slotsBody string
	cfg := gnbConfig{
		sliceSpec:   "mt:2M,rr:4M",
		uesPerSlice: 2,
		cells:       2,
		duration:    slots * time.Millisecond,
		e2Addr:      lis.Addr().String(),
		codecName:   "binary",
		liveness:    500 * time.Millisecond,
		httpAddr:    "127.0.0.1:0",
		onReady:     func(addr string) { httpAddr = addr },
		afterRun: func() {
			metricsText = httpGet(t, "http://"+httpAddr+"/metrics")
			slotsBody = httpGet(t, "http://"+httpAddr+"/debug/slots?n=16")
		},
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if httpAddr == "" {
		t.Fatal("onReady never fired")
	}

	// Series that must be populated (value > 0) after >= 1000 slots.
	for series, want := range map[string]float64{
		`waran_slot_latency_us_count{cell="0"}`:      slots,
		`waran_slot_latency_us_count{cell="1"}`:      slots,
		`waran_cell_deadline_slots_total{cell="0"}`:  slots,
		`waran_plugin_fuel_per_call_count{cell="0"}`: 1,
		`waran_sched_calls_total{slice="1"}`:         1,
		`waran_wabi_pool_gets_total{slice="1"}`:      1,
	} {
		if v := metricValue(t, metricsText, series); v < want {
			t.Errorf("%s = %v, want >= %v", series, v, want)
		}
	}
	// Series that must at least be exposed (zero is fine on a clean link).
	for _, series := range []string{
		"waran_wabi_module_cache_hits_total",
		"waran_wabi_module_cache_misses_total",
		"waran_e2_assoc_reconnects_total",
		"waran_e2_assoc_dropped_indications_total",
		"waran_slot_overruns_total",
		"waran_slice_fallback_slots_total",
		"waran_sched_granted_prbs_total",
	} {
		if !regexp.MustCompile(regexp.QuoteMeta(series)).MatchString(metricsText) {
			t.Errorf("exposition missing %s", series)
		}
	}

	var slotsResp struct {
		Count int             `json:"count"`
		Slots []obs.SlotEvent `json:"slots"`
	}
	if err := json.Unmarshal([]byte(slotsBody), &slotsResp); err != nil {
		t.Fatalf("bad /debug/slots payload: %v\n%s", err, slotsBody)
	}
	if slotsResp.Count != 16 || len(slotsResp.Slots) != 16 {
		t.Fatalf("/debug/slots?n=16 returned %d events", slotsResp.Count)
	}
	last := slotsResp.Slots[len(slotsResp.Slots)-1]
	if len(last.Slices) != 2 || last.WallUs <= 0 {
		t.Fatalf("trace event not populated: %+v", last)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// metricValue extracts one series' value from Prometheus text exposition.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Errorf("series %s not found in exposition", series)
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %s has bad value %q: %v", series, m[1], err)
	}
	return v
}

package main

import "testing"

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"3M", 3e6, true},
		{"12M", 12e6, true},
		{"1.5G", 1.5e9, true},
		{"500k", 5e5, true},
		{"500K", 5e5, true},
		{"1000", 1000, true},
		{"", 0, false},
		{"abcM", 0, false},
	}
	for _, tc := range cases {
		got, err := parseRate(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseRate(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseRate(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseSlice(t *testing.T) {
	name, rate, err := parseSlice(" pf:15M ")
	if err != nil || name != "pf" || rate != 15e6 {
		t.Fatalf("got %q %v %v", name, rate, err)
	}
	if _, _, err := parseSlice("pf"); err == nil {
		t.Fatal("missing rate accepted")
	}
	if _, _, err := parseSlice("bogus:1M"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestBuildCodec(t *testing.T) {
	c, err := buildCodec("binary", false)
	if err != nil || c.Name() != "binary" {
		t.Fatalf("got %v %v", c, err)
	}
	shimmed, err := buildCodec("varint", true)
	if err != nil {
		t.Fatal(err)
	}
	if shimmed.Name() != "varint+plugin:widen8to12" {
		t.Fatalf("shimmed codec = %q", shimmed.Name())
	}
	if _, err := buildCodec("asn1", false); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestStandaloneRunSmoke drives the whole binary path for a short run.
func TestStandaloneRunSmoke(t *testing.T) {
	if err := run("mt:2M,rr:4M", 2, 200_000_000, "", "binary", false, 0, false); err != nil {
		t.Fatal(err)
	}
}

// Command ric runs a WA-RAN near-Real-Time RIC: it hosts xApps as Wasm
// plugins and accepts E2-lite associations from gNBs (cmd/gnb -e2 <addr>).
//
// Usage:
//
//	ric -listen 127.0.0.1:36421 -xapps steer,sla -codec binary
//	ric -http 127.0.0.1:9092        # serve /metrics and pprof while running
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"waran/internal/e2"
	"waran/internal/obs"
	"waran/internal/obs/flight"
	"waran/internal/obs/trace"
	"waran/internal/plugins"
	"waran/internal/ric"
	"waran/internal/wabi"
	"waran/internal/wasm"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:36421", "address to accept E2 associations on")
	xapps := flag.String("xapps", "steer,sla", "comma list of xApps: steer, sla, ping, pong")
	codecName := flag.String("codec", "binary", "E2 codec: binary, json, varint")
	shim := flag.Bool("widen-shim", false, "wrap the E2 codec in the 8->12-bit vendor adaptation plugin")
	period := flag.Uint("period", 100, "indication report period in ms")
	hb := flag.Duration("hb", 100*time.Millisecond, "heartbeat interval for association liveness (0 disables)")
	once := flag.Bool("once", false, "exit after the first association ends")
	nonRT := flag.Bool("nonrt", false, "run the non-RT RIC (SLA-tuner rApp) over the KPM history")
	httpAddr := flag.String("http", "", "serve /metrics and pprof on this address (empty = off)")
	traceOn := flag.Bool("trace", false, "enable control-loop span tracing and the xApp fuel profiler (served at /debug/trace and /debug/wasm/profile)")
	shards := flag.Int("shards", 0, "association shard count (0 = default)")
	noBatch := flag.Bool("nobatch", false, "do not advertise windowed indication batching to agents")
	overload := flag.Bool("overload", false, "arm the overload guard: token-bucket admission, bounded queues + shed policy, brownout, per-xApp breakers (DESIGN.md 17)")
	flightOn := flag.Bool("flight", false, "arm the flight recorder: always-on incident journal, SLO burn-rate detectors, anomaly-triggered diagnostic bundles (served at /debug/flight, DESIGN.md 18)")
	flightDir := flag.String("flight-dir", "flight-bundles", "directory anomaly-triggered diagnostic bundles are written into")
	flag.Parse()

	if err := run(runOpts{
		listen: *listen, xapps: *xapps, codecName: *codecName, shim: *shim,
		period: uint32(*period), hb: *hb, once: *once, nonRT: *nonRT,
		httpAddr: *httpAddr, traceOn: *traceOn, shards: *shards, noBatch: *noBatch,
		overload: *overload, flightOn: *flightOn, flightDir: *flightDir,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ric:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	listen, xapps, codecName, httpAddr string
	shim, once, nonRT, traceOn         bool
	period                             uint32
	hb                                 time.Duration
	shards                             int
	noBatch                            bool
	overload                           bool
	flightOn                           bool
	flightDir                          string
}

// flightDepth is the flight recorder's journal ring capacity when -flight
// is on.
const flightDepth = 4096

// shedObjective is the RIC's shed-ratio SLO: at most 1% of offered
// indications may shed before the burn-rate detector pages.
const shedObjective = 0.01

var xappSources = map[string]string{
	"steer": plugins.TrafficSteerXAppWAT,
	"sla":   plugins.SLAAssureXAppWAT,
	"ping":  plugins.PingXAppWAT,
	"pong":  plugins.PongXAppWAT,
}

func run(o runOpts) error {
	var tracer *trace.Tracer
	var profile *wasm.Profile
	if o.traceOn {
		tracer = trace.NewTracer(8192)
		profile = wasm.NewProfile()
		fmt.Println("tracing: control-loop spans + xApp fuel profiler enabled")
	}
	assoc := &ric.AssocMetrics{}
	var ov *ric.OverloadConfig
	if o.overload {
		ov = &ric.OverloadConfig{}
		fmt.Println("overload guard: admission + bounded queues + brownout + xApp breakers armed")
	}
	var frec *flight.Recorder
	if o.flightOn {
		frec = flight.NewRecorder(flightDepth)
	}
	r, err := ric.New(ric.Config{
		ReportPeriodMs:    o.period,
		HeartbeatInterval: o.hb,
		Shards:            o.shards,
		DisableBatching:   o.noBatch,
		Overload:          ov,
		Assoc:             assoc,
		Tracer:            tracer,
		Flight:            frec,
		Profile:           profile,
		OnFault: func(xapp string, err error) {
			fmt.Printf("xApp %s fault (contained): %v\n", xapp, err)
		},
		OnLog: func(xapp, msg string) {
			fmt.Printf("xApp %s: %s\n", xapp, msg)
		},
	})
	if err != nil {
		return err
	}
	for _, name := range strings.Split(o.xapps, ",") {
		name = strings.TrimSpace(name)
		src, ok := xappSources[name]
		if !ok {
			return fmt.Errorf("unknown xApp %q (have: steer, sla, ping, pong)", name)
		}
		if _, err := r.AddXAppWAT(name, src, wabi.Policy{}); err != nil {
			return err
		}
		fmt.Printf("installed xApp %q (Wasm plugin)\n", name)
	}

	codec, ok := e2.CodecByName(o.codecName)
	if !ok {
		return fmt.Errorf("unknown codec %q", o.codecName)
	}
	wireCodec := e2.Codec(codec)
	if o.shim {
		// Associations are served one at a time, so a single shim plugin
		// instance suffices.
		pc, err := ric.NewPluginCodecWAT("widen8to12", plugins.Widen8To12CommWAT, codec)
		if err != nil {
			return err
		}
		wireCodec = pc
	}

	lis, err := e2.Listen(o.listen, wireCodec)
	if err != nil {
		return err
	}
	defer lis.Close()
	lis.SetFlightRecorder(frec)
	fmt.Printf("near-RT RIC listening on %s (codec %s, report period %d ms, heartbeat %v, %d shards)\n",
		lis.Addr(), wireCodec.Name(), o.period, o.hb, r.Config().Shards)

	reg := obs.NewRegistry()
	r.Register(reg)

	// The flight recorder journals RIC-plane transitions (brownout shifts,
	// sheds, admission refusals, per-xApp breaker trips, association
	// lifecycle), burns the shed-ratio and dispatch-p99 SLOs through
	// multi-window detectors, and captures a diagnostic bundle when a
	// detector fires, the brownout shifts, or a breaker opens.
	var fdet *flight.DetectorSet
	var fcap *flight.Capturer
	if frec != nil {
		frec.Register(reg)
		fdet = flight.NewDetectorSet(frec)
		if oc := r.Config().Overload; oc != nil {
			fdet.MustAdd(flight.SLO{
				Name:      "shed-ratio",
				Objective: shedObjective,
				Bad: func() uint64 {
					s, _ := r.OverloadStats()
					return s.ShedOverflow + s.ShedStale + s.ShedTeardown + s.RefusedLate
				},
				Total: func() uint64 {
					s, _ := r.OverloadStats()
					return s.Offered
				},
			}, flight.DetectorConfig{})
			if oc.LoopP99Budget > 0 {
				fdet.MustAdd(flight.SLO{
					Name: "dispatch-p99",
					Value: func() float64 {
						s, _ := r.OverloadStats()
						return s.DispatchP99Ms
					},
					Budget: float64(oc.LoopP99Budget) / float64(time.Millisecond),
				}, flight.DetectorConfig{})
			}
		}
		frec.SetTriggers(flight.EvDetectorFire, flight.EvBrownoutShift, flight.EvBreakerOpen)
		ccfg := flight.CapturerConfig{Dir: o.flightDir, Registry: reg, Detectors: fdet, Tracer: tracer}
		if profile != nil {
			ccfg.Profile = profile
		}
		fcap, err = flight.NewCapturer(frec, ccfg)
		if err != nil {
			return err
		}
		flightStop := make(chan struct{})
		defer close(flightStop)
		go fcap.Run(flightStop)
		go fdet.Run(flightStop, time.Second)
		fmt.Printf("flight recorder: %d-event journal, shed SLO %.1f%%, bundles -> %s\n",
			frec.Cap(), shedObjective*100, o.flightDir)
	}

	if o.httpAddr != "" {
		hlis, err := net.Listen("tcp", o.httpAddr)
		if err != nil {
			return err
		}
		var opts []obs.MuxOption
		if tracer != nil {
			opts = append(opts, obs.WithTracer(tracer), obs.WithWasmProfile(profile))
		}
		if frec != nil {
			opts = append(opts, flight.MuxOption(frec, fdet, fcap))
		}
		srv := &http.Server{Handler: obs.NewMux(reg, nil, opts...)}
		go srv.Serve(hlis)
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics /debug/pprof\n", hlis.Addr())
		if tracer != nil {
			fmt.Printf("tracing: http://%s/debug/trace /debug/wasm/profile\n", hlis.Addr())
		}
		if frec != nil {
			fmt.Printf("flight: http://%s/debug/flight /debug/flight/journal /debug/flight/bundle\n", hlis.Addr())
		}
	}

	// onAssociation wires the per-association extras (the non-RT RIC's
	// guidance loop) and returns their teardown.
	onAssociation := func(conn *e2.Conn) func() {
		fmt.Println("E2 association accepted")
		if !o.nonRT {
			return nil
		}
		// Guidance from the slow loop flows back over the same E2
		// association as regular control requests.
		stopNonRT := make(chan struct{})
		var reqID uint32 = 10_000
		n := ric.NewNonRTRIC(r.KPM, func(c e2.ControlRequest) error {
			reqID++
			fmt.Printf("rApp guidance: %s slice=%d value=%.1f\n", c.Action, c.SliceID, c.Value)
			return conn.Send(&e2.Message{
				Type: e2.TypeControlRequest, RequestID: reqID,
				RANFunction: e2.RANFunctionRC, Control: &c,
			})
		})
		n.AddRApp(&ric.SLATuner{})
		go n.Run(stopNonRT)
		fmt.Println("non-RT RIC running (sla-tuner rApp, 1 s cadence)")
		return func() { close(stopNonRT) }
	}
	onEnd := func(err error) {
		if err != nil {
			fmt.Printf("association ended: %v\n", err)
		} else {
			fmt.Println("association closed")
		}
		ind, controls := r.Counters()
		snap := assoc.Stats()
		fmt.Printf("totals: %d indications processed, %d control actions emitted, %d reconnects, %d missed heartbeats\n",
			ind, controls, snap.Reconnects, snap.MissedHeartbeats)
	}

	if o.once {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		teardown := onAssociation(conn)
		err = r.ServeConn(conn, nil)
		conn.Close()
		if teardown != nil {
			teardown()
		}
		onEnd(err)
		return nil
	}

	// The session supervises associations forever: a gNB that reconnects
	// after a fault is re-subscribed and served by the same xApp state.
	sess, err := ric.NewSession(ric.SessionConfig{
		RIC:           r,
		Connect:       lis.Accept,
		Metrics:       assoc,
		OnAssociation: onAssociation,
		OnEnd:         onEnd,
	})
	if err != nil {
		return err
	}
	sess.Run(make(chan struct{}))
	return nil
}

// Command waranbench regenerates the paper's evaluation (§5): every figure
// and the memory-safety matrix. Experiments self-register with
// internal/core's registry; figures print as text tables with the paper's
// qualitative expectation alongside the measured outcome, while multi-cell
// and fault experiments emit JSON (with an embedded metric-registry
// snapshot under "obs").
//
// Usage:
//
//	waranbench -list
//	waranbench -fig 5a|5b|5c|5d|safety|upload|all [-duration 10s]
//	waranbench -fig multicell [-cells 8] [-slots 2000] [-par 0] [-abi auto|codec|zerocopy] [-tier auto|interp|fused|closure]   (JSON output)
//	waranbench -fig e2faults [-e2f-slots 2000] [-e2f-drop 0.05] [-e2f-reset 25] [-e2f-seed 1]   (JSON output)
//	waranbench -fig tracelat [-tl-cells 4] [-tl-slots 1200] [-tl-seed 1]   (JSON output)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"waran/internal/core"
	"waran/internal/obs"

	// Blank import: ric-coupled experiments (e2faults) register themselves.
	_ "waran/internal/ric"
)

var (
	mcCells = flag.Int("cells", 8, "multicell: number of cells in the group")
	mcSlots = flag.Int("slots", 2000, "multicell: slots to step")
	mcPar   = flag.Int("par", 0, "multicell: worker parallelism (0 = GOMAXPROCS)")
	mcABI   = flag.String("abi", "auto", "multicell: plugin call path (auto, codec, zerocopy)")
	mcTier  = flag.String("tier", "auto", "multicell: wasm execution tier (auto, interp, fused, closure)")

	e2fSlots = flag.Int("e2f-slots", 2000, "e2faults: MAC slots to run")
	e2fDrop  = flag.Float64("e2f-drop", 0.05, "e2faults: drop probability on the lossy connection")
	e2fReset = flag.Int("e2f-reset", 25, "e2faults: forced reset after N writes on the lossy connection")
	e2fSeed  = flag.Int64("e2f-seed", 1, "e2faults: fault schedule seed")
	e2fHB    = flag.Duration("e2f-hb", 5*time.Millisecond, "e2faults: RIC heartbeat interval")

	tlCells = flag.Int("tl-cells", 4, "tracelat: number of gNB cells")
	tlSlots = flag.Int("tl-slots", 1200, "tracelat: MAC slots to run")
	tlSeed  = flag.Int64("tl-seed", 1, "tracelat: jitter schedule seed")
)

func main() {
	fig := flag.String("fig", "all", "which experiment to run (see -list), or all")
	duration := flag.Duration("duration", 0, "override experiment duration (0 = per-figure default)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name(), e.Describe())
		}
		return
	}

	if *fig == "all" {
		for _, e := range core.Experiments() {
			runExperiment(e, *duration)
		}
		return
	}
	e, ok := core.LookupExperiment(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "waranbench: unknown experiment %q (have: %s, all)\n",
			*fig, strings.Join(core.ExperimentNames(), ", "))
		os.Exit(2)
	}
	runExperiment(e, *duration)
}

// configFor builds one experiment's knob set from the command line. Every
// experiment gets a fresh metric registry so instrumented runs embed an
// isolated snapshot.
func configFor(name string, duration time.Duration) core.ExpConfig {
	cfg := core.ExpConfig{Duration: duration, Obs: obs.NewRegistry()}
	switch name {
	case "multicell":
		cfg.Cells = *mcCells
		cfg.Slots = *mcSlots
		cfg.Parallelism = *mcPar
		cfg.ABI = *mcABI
		cfg.Tier = *mcTier
	case "e2faults":
		cfg.Slots = *e2fSlots
		cfg.Drop = *e2fDrop
		cfg.ResetAfterWrites = *e2fReset
		cfg.Seed = *e2fSeed
		cfg.Heartbeat = *e2fHB
	case "tracelat":
		cfg.Cells = *tlCells
		cfg.Slots = *tlSlots
		cfg.Seed = *tlSeed
	}
	return cfg
}

// runExperiment executes one registered experiment and presents the result:
// text for results that render themselves, indented JSON otherwise.
func runExperiment(e core.Experiment, duration time.Duration) {
	res, err := e.Run(configFor(e.Name(), duration))
	if err == nil {
		err = present(res)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "waranbench: %s: %v\n", e.Name(), err)
		os.Exit(1)
	}
}

func present(res any) error {
	if tr, ok := res.(core.TextRenderer); ok {
		return tr.RenderText(os.Stdout)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

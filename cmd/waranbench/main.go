// Command waranbench regenerates the paper's evaluation (§5): every figure
// and the memory-safety matrix, printed as text tables with the paper's
// qualitative expectation alongside the measured outcome.
//
// Usage:
//
//	waranbench -fig 5a|5b|5c|5d|safety|all [-duration 10s]
//	waranbench -fig multicell [-cells 8] [-slots 2000] [-par 0]   (JSON output)
//	waranbench -fig e2faults [-e2f-slots 2000] [-e2f-drop 0.05] [-e2f-reset 25] [-e2f-seed 1]   (JSON output)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/ric"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
	"waran/internal/wat"
)

var (
	mcCells = flag.Int("cells", 8, "multicell: number of cells in the group")
	mcSlots = flag.Int("slots", 2000, "multicell: slots to step")
	mcPar   = flag.Int("par", 0, "multicell: worker parallelism (0 = GOMAXPROCS)")

	e2fSlots = flag.Int("e2f-slots", 2000, "e2faults: MAC slots to run")
	e2fDrop  = flag.Float64("e2f-drop", 0.05, "e2faults: drop probability on the lossy connection")
	e2fReset = flag.Int("e2f-reset", 25, "e2faults: forced reset after N writes on the lossy connection")
	e2fSeed  = flag.Int64("e2f-seed", 1, "e2faults: fault schedule seed")
	e2fHB    = flag.Duration("e2f-hb", 5*time.Millisecond, "e2faults: RIC heartbeat interval")
)

func main() {
	fig := flag.String("fig", "all", "which experiment: 5a, 5b, 5c, 5d, safety, upload, multicell, e2faults, all")
	duration := flag.Duration("duration", 0, "override experiment duration (0 = per-figure default)")
	flag.Parse()

	run := func(name string, f func(time.Duration) error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(*duration); err != nil {
			fmt.Fprintf(os.Stderr, "waranbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("5a", fig5a)
	run("5b", fig5b)
	run("5c", fig5c)
	run("5d", fig5d)
	run("safety", safety)
	run("upload", upload)
	run("multicell", multicell)
	run("e2faults", e2faults)
}

func fig5a(d time.Duration) error {
	if d == 0 {
		d = 10 * time.Second
	}
	fmt.Printf("== Fig. 5a: Co-existence of MVNOs (duration %v) ==\n", d)
	fmt.Println("paper: each MVNO reaches its target cumulative DL rate on one gNB")
	res, err := core.RunFig5a(nil, d)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-6s %12s %12s %8s\n", "MVNO", "sched", "target Mb/s", "achieved", "ratio")
	for _, m := range res.MVNOs {
		fmt.Printf("%-8s %-6s %12.2f %12.2f %8.2f\n",
			m.Spec.Name, m.Spec.Scheduler, m.TargetBps/1e6, m.MeanBps/1e6, m.MeanBps/m.TargetBps)
	}
	fmt.Println()
	return nil
}

func fig5b(d time.Duration) error {
	if d == 0 {
		d = 30 * time.Second
	}
	fmt.Printf("== Fig. 5b: Live swap of MVNO scheduler MT -> PF -> RR (duration %v) ==\n", d)
	fmt.Println("paper: swap on the fly, no gNB restart, no UE disconnect;")
	fmt.Println("       MT: best-MCS UE hits 22 Mb/s; PF: starved UE prioritized; RR: equal shares")
	res, err := core.RunFig5b(d, 0)
	if err != nil {
		return err
	}
	fmt.Printf("hot swaps applied: %d, UEs detached: %d\n", res.Swaps, res.UEsDetached)
	fmt.Printf("%-10s", "t (s)")
	for _, u := range res.UEs {
		fmt.Printf("  MCS%-2d Mb/s", u.MCS)
	}
	fmt.Println()
	// All UEs share the same window cadence.
	for i := range res.UEs[0].Series {
		fmt.Printf("%-10.1f", res.UEs[0].Series[i].Time.Seconds())
		for _, u := range res.UEs {
			fmt.Printf("  %10.2f", u.Series[i].Bps/1e6)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func fig5c(d time.Duration) error {
	if d == 0 {
		d = 100 * time.Second
	}
	fmt.Printf("== Fig. 5c: Memory increase, leaky scheduler in plugin vs native (duration %v) ==\n", d)
	fmt.Println("paper: plugin-sandboxed leak stays flat; same code native grows linearly")
	res, err := core.RunFig5c(d, 0)
	if err != nil {
		return err
	}
	fmt.Printf("sandbox cap: %.1f MiB\n", float64(res.CapBytes)/(1<<20))
	fmt.Printf("%-10s %16s %16s\n", "t (s)", "plugin MiB", "native MiB")
	step := len(res.Points) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Points); i += step {
		p := res.Points[i]
		fmt.Printf("%-10.1f %16.2f %16.2f\n",
			p.Time.Seconds(), float64(p.PluginBytes)/(1<<20), float64(p.NativeBytes)/(1<<20))
	}
	last := res.Points[len(res.Points)-1]
	fmt.Printf("final: plugin %.2f MiB (capped), native %.2f MiB (unbounded)\n\n",
		float64(last.PluginBytes)/(1<<20), float64(last.NativeBytes)/(1<<20))
	return nil
}

func fig5d(time.Duration) error {
	fmt.Println("== Fig. 5d: Plugin execution time incl. serialization ==")
	fmt.Println("paper: P99 well below the 1000 us slot for MT/PF/RR at 1/10/20 UEs")
	res, err := core.RunFig5d(nil, nil, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %6s %12s %12s %12s %10s\n", "sched", "UEs", "P50 (us)", "P99 (us)", "mean (us)", "deadline")
	for _, c := range res.Cells {
		verdict := "OK"
		if c.P99us >= res.SlotDeadlineUs {
			verdict = "MISS"
		}
		fmt.Printf("%-6s %6d %12.1f %12.1f %12.1f %10s\n",
			c.Scheduler, c.NumUEs, c.P50us, c.P99us, c.Meanus, verdict)
	}
	fmt.Println()
	return nil
}

func safety(time.Duration) error {
	fmt.Println("== §5D: Memory-safety fault matrix ==")
	fmt.Println("paper: improper code traps in the sandbox; the gNB catches it and keeps running")
	rows, err := core.RunSafetyMatrix()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-28s %-14s %-14s\n", "fault", "sandbox verdict", "host survived", "slice rescued")
	for _, r := range rows {
		fmt.Printf("%-16s %-28s %-14v %-14v\n", r.Fault, r.TrapCode, r.HostSurvived, r.SliceRescued)
	}
	fmt.Println()
	return nil
}

// upload demonstrates the Fig. 1 deployment flow: new scheduler bytecode
// pushed into a running gNB through the E2 control plane.
func upload(time.Duration) error {
	fmt.Println("== Fig. 1 flow: push Wasm scheduler bytecode into a running gNB ==")
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		return err
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		return err
	}
	s, err := gnb.Slices.AddSlice(1, "tenant", 10e6, rr, nil)
	if err != nil {
		return err
	}
	ue := ran.NewUE(1, 1, 24)
	ue.Traffic = ran.NewCBR(5e6)
	if err := gnb.AttachUE(ue); err != nil {
		return err
	}
	gnb.RunSlots(100, nil)
	fmt.Printf("before: slice runs %q\n", s.SchedulerName())

	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		return err
	}
	start := time.Now()
	err = gnb.Apply(&e2.ControlRequest{
		Action: e2.ActionUploadScheduler, SliceID: 1, Text: "pf-v2", Blob: blob,
	})
	if err != nil {
		return err
	}
	fmt.Printf("uploaded %d bytes of bytecode; decode+validate+instantiate+swap in %v\n",
		len(blob), time.Since(start).Round(time.Microsecond))
	fmt.Printf("after:  slice runs %q (gNB never stopped; UE stayed attached)\n", s.SchedulerName())
	gnb.RunSlots(100, nil)
	if _, ok := gnb.UE(1); !ok {
		return fmt.Errorf("UE lost")
	}
	fmt.Println()
	return nil
}

// multicellReport is the JSON emitted by -fig multicell: one cell group
// stepped serially and then with the worker pool, plus a fleet-wide plugin
// hot swap through the content-addressed module cache.
type multicellReport struct {
	Cells               int     `json:"cells"`
	Slots               int     `json:"slots"`
	Parallelism         int     `json:"parallelism"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	SerialSlotsPerSec   float64 `json:"serial_slots_per_sec"`
	ParallelSlotsPerSec float64 `json:"parallel_slots_per_sec"`
	Speedup             float64 `json:"speedup"`
	DeadlineUs          float64 `json:"deadline_us"`
	Overruns            uint64  `json:"overruns"`
	WorstSlotUs         float64 `json:"worst_slot_us"`
	P99SlotUs           float64 `json:"p99_slot_us"`
	HotSwapCells        int     `json:"hot_swap_cells"`
	HotSwapCompiles     uint64  `json:"hot_swap_compiles"`
	CacheHits           uint64  `json:"cache_hits"`
	CacheMisses         uint64  `json:"cache_misses"`
}

// buildMulticellGroup assembles a group of Fig. 5a-shaped cells whose slices
// share pool-backed built-in schedulers.
func buildMulticellGroup(cells, par int) (*core.CellGroup, error) {
	cg, err := core.NewCellGroup(ran.CellConfig{}, core.CellGroupConfig{Cells: cells, Parallelism: par})
	if err != nil {
		return nil, err
	}
	specs := core.DefaultFig5aSpecs()
	for c := 0; c < cells; c++ {
		gnb := cg.Cell(c)
		ueID := uint32(1)
		for _, sp := range specs {
			if _, err := gnb.Slices.AddSlice(sp.ID, sp.Name, sp.TargetBps, sched.RoundRobin{}, nil); err != nil {
				return nil, err
			}
			for k := 0; k < sp.NumUEs; k++ {
				ue := ran.NewUE(ueID, sp.ID, 22+2*k)
				ue.Traffic = ran.NewCBR(1.4 * sp.TargetBps / float64(sp.NumUEs))
				if err := gnb.AttachUE(ue); err != nil {
					return nil, err
				}
				ueID++
			}
		}
	}
	for _, sp := range specs {
		if _, err := cg.InstallPooledScheduler(sp.ID, sp.Scheduler, wabi.Policy{}, cells); err != nil {
			return nil, err
		}
	}
	return cg, nil
}

// multicell steps a cell group serially and with the worker pool, then
// fans one plugin upload across every cell, and prints a JSON report.
func multicell(time.Duration) error {
	par := *mcPar
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	rep := multicellReport{
		Cells:       *mcCells,
		Slots:       *mcSlots,
		Parallelism: par,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	timeRun := func(parallelism int) (float64, *core.CellGroup, error) {
		cg, err := buildMulticellGroup(*mcCells, parallelism)
		if err != nil {
			return 0, nil, err
		}
		start := time.Now()
		cg.RunSlots(*mcSlots, nil)
		elapsed := time.Since(start)
		return float64(*mcSlots) / elapsed.Seconds(), cg, nil
	}

	var err error
	if rep.SerialSlotsPerSec, _, err = timeRun(1); err != nil {
		return err
	}
	parRate, cg, err := timeRun(par)
	if err != nil {
		return err
	}
	rep.ParallelSlotsPerSec = parRate
	rep.Speedup = rep.ParallelSlotsPerSec / rep.SerialSlotsPerSec

	for _, st := range cg.WatchdogStats() {
		rep.DeadlineUs = float64(st.Deadline.Microseconds())
		rep.Overruns += st.Overruns
		if w := float64(st.Worst.Nanoseconds()) / 1e3; w > rep.WorstSlotUs {
			rep.WorstSlotUs = w
		}
		if st.P99us > rep.P99SlotUs {
			rep.P99SlotUs = st.P99us
		}
	}

	// Fleet-wide hot swap of one compiled module through the shared cache.
	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		return err
	}
	before := wasm.CompileCount()
	if _, err := cg.UploadSchedulerAll(1, "pf-v2", blob, wabi.Policy{}, par); err != nil {
		return err
	}
	for i := 0; i < *mcCells; i++ {
		err := cg.Cell(i).Apply(&e2.ControlRequest{
			Action: e2.ActionUploadScheduler, SliceID: 1, Text: "pf-v2", Blob: blob,
		})
		if err != nil {
			return err
		}
	}
	rep.HotSwapCells = *mcCells
	rep.HotSwapCompiles = wasm.CompileCount() - before
	rep.CacheHits, rep.CacheMisses = cg.Modules.Stats()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// e2faults runs the association-resilience experiment: a gNB and RIC over
// loopback with faults injected into the agent's transport — a half-open
// association, then a lossy connection that is forcibly reset — and prints
// the recovery counters as JSON.
func e2faults(time.Duration) error {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		return err
	}
	rr, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		return err
	}
	// Over-ambitious target keeps the SLA xApp emitting controls, so
	// control delivery after recovery is observable.
	if _, err := gnb.Slices.AddSlice(1, "tenant", 100e6, rr, nil); err != nil {
		return err
	}
	ue := ran.NewUE(1, 1, 20)
	ue.Traffic = ran.NewCBR(3e6)
	if err := gnb.AttachUE(ue); err != nil {
		return err
	}

	res, err := ric.RunE2Faults(ric.E2FaultsConfig{
		Slots:            *e2fSlots,
		Drop:             *e2fDrop,
		ResetAfterWrites: *e2fReset,
		Seed:             *e2fSeed,
		Heartbeat:        *e2fHB,
	}, gnb, func(uint64) { gnb.Step() })
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// Command waranbench regenerates the paper's evaluation (§5): every figure
// and the memory-safety matrix. Experiments self-register with
// internal/core's registry — including their own knobs, which this binary
// exposes as namespaced flags (-<experiment>.<knob>) with no
// experiment-specific globals. Figures print as text tables with the paper's
// qualitative expectation alongside the measured outcome, while multi-cell,
// fault and scale experiments emit JSON (with an embedded metric-registry
// snapshot under "obs").
//
// Usage:
//
//	waranbench -list                  # experiments and their knobs
//	waranbench -fig 5a|5b|5c|5d|safety|upload|all [-duration 10s]
//	waranbench -fig multicell -multicell.cells 8 -multicell.abi zerocopy
//	waranbench -fig e2faults -e2faults.drop 0.05 -e2faults.seed 1
//	waranbench -fig citysim -citysim.cells 256 -citysim.ues 4096
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"waran/internal/core"
	"waran/internal/obs"

	// Blank import: ric-coupled experiments (e2faults, tracelat, citysim)
	// register themselves.
	_ "waran/internal/ric"
)

// boundFlag is one experiment knob bound to a parsed command-line value.
type boundFlag struct {
	exp  string
	f    core.ExpFlag
	text *string
}

func main() {
	fig := flag.String("fig", "all", "which experiment to run (see -list), or all")
	duration := flag.Duration("duration", 0, "override experiment duration (0 = per-figure default)")
	list := flag.Bool("list", false, "list registered experiments and their knobs, then exit")

	// Every experiment's declared knobs become -<experiment>.<knob> flags;
	// this binary owns none of them.
	var bounds []boundFlag
	for _, e := range core.Experiments() {
		for _, f := range core.ExperimentFlags(e) {
			name := e.Name() + "." + f.Name
			bounds = append(bounds, boundFlag{
				exp:  e.Name(),
				f:    f,
				text: flag.String(name, f.Default, "["+e.Name()+"] "+f.Usage),
			})
		}
	}
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-12s %s\n", e.Name(), e.Describe())
			for _, f := range core.ExperimentFlags(e) {
				fmt.Printf("    -%s.%s (default %s)  %s\n", e.Name(), f.Name, f.Default, f.Usage)
			}
		}
		return
	}

	if *fig == "all" {
		for _, e := range core.Experiments() {
			runExperiment(e, bounds, *duration)
		}
		return
	}
	e, ok := core.LookupExperiment(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "waranbench: unknown experiment %q (have: %s, all)\n",
			*fig, strings.Join(core.ExperimentNames(), ", "))
		os.Exit(2)
	}
	runExperiment(e, bounds, *duration)
}

// configFor builds one experiment's knob set by applying its bound flags.
// Every experiment gets a fresh metric registry so instrumented runs embed
// an isolated snapshot.
func configFor(name string, bounds []boundFlag, duration time.Duration) (core.ExpConfig, error) {
	cfg := core.ExpConfig{Duration: duration, Obs: obs.NewRegistry()}
	for _, b := range bounds {
		if b.exp != name {
			continue
		}
		if err := b.f.Set(&cfg, *b.text); err != nil {
			return cfg, fmt.Errorf("-%s.%s: %w", b.exp, b.f.Name, err)
		}
	}
	return cfg, nil
}

// runExperiment executes one registered experiment and presents the result:
// text for results that render themselves, indented JSON otherwise.
func runExperiment(e core.Experiment, bounds []boundFlag, duration time.Duration) {
	cfg, err := configFor(e.Name(), bounds, duration)
	if err == nil {
		var res any
		res, err = e.Run(cfg)
		if err == nil {
			err = present(res)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "waranbench: %s: %v\n", e.Name(), err)
		os.Exit(1)
	}
}

func present(res any) error {
	if tr, ok := res.(core.TextRenderer); ok {
		return tr.RenderText(os.Stdout)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

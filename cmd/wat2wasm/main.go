// Command wat2wasm compiles WebAssembly text format to the binary format
// using WA-RAN's built-in toolchain, optionally validating and invoking an
// exported function — handy when developing scheduler or xApp plugins.
//
// Usage:
//
//	wat2wasm [-o out.wasm] [-run entry] [-args "1 2 3"] input.wat
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"waran/internal/wasm"
	"waran/internal/wat"
)

func main() {
	out := flag.String("o", "", "output file (default: input with .wasm extension)")
	run := flag.String("run", "", "after compiling, instantiate and call this export")
	args := flag.String("args", "", "space-separated u64 arguments for -run")
	dump := flag.Bool("dump", false, "print a disassembly of the compiled module")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wat2wasm [flags] input.wat\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := compile(flag.Arg(0), *out, *run, *args, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "wat2wasm:", err)
		os.Exit(1)
	}
}

func compile(inPath, outPath, run, argStr string, dump bool) error {
	src, err := os.ReadFile(inPath)
	if err != nil {
		return err
	}
	m, err := wat.Compile(string(src))
	if err != nil {
		return err
	}
	if err := wasm.Validate(m); err != nil {
		return err
	}
	bin, err := wasm.Encode(m)
	if err != nil {
		return err
	}
	if outPath == "" {
		outPath = strings.TrimSuffix(inPath, filepath.Ext(inPath)) + ".wasm"
	}
	if err := os.WriteFile(outPath, bin, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes, %d functions, %d exports\n", outPath, len(bin), len(m.Funcs), len(m.Exports))
	if dump {
		fmt.Print(wasm.Disassemble(m))
	}

	if run == "" {
		return nil
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		return err
	}
	inst, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		return err
	}
	var callArgs []uint64
	for _, f := range strings.Fields(argStr) {
		v, err := strconv.ParseUint(f, 0, 64)
		if err != nil {
			return fmt.Errorf("bad argument %q: %w", f, err)
		}
		callArgs = append(callArgs, v)
	}
	res, err := inst.Call(run, callArgs...)
	if err != nil {
		return fmt.Errorf("call %s: %w", run, err)
	}
	fmt.Printf("%s(%v) = %v\n", run, callArgs, res)
	return nil
}

// Live swap: the paper's Fig. 5b scenario. One MVNO with three UEs at MCS
// 20/24/28 (all offered 22 Mb/s) hot-swaps its intra-slice scheduler from
// max-throughput to proportional-fair to round-robin while the gNB keeps
// running and every UE stays attached.
//
// Watch the pattern change: under MT the best-channel UE reaches its target
// and the worst is starved; right after the PF swap the starved UE is
// prioritized (large averaging time constant); under RR shares equalize.
//
//	go run ./examples/live-swap
package main

import (
	"fmt"
	"log"
	"time"

	"waran/internal/core"
)

func main() {
	const duration = 30 * time.Second
	fmt.Printf("running %v with hot swaps at %v and %v...\n\n", duration, duration/3, 2*duration/3)

	res, err := core.RunFig5b(duration, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hot swaps applied: %d    UEs detached during swaps: %d\n\n", res.Swaps, res.UEsDetached)
	fmt.Printf("%-8s %-8s", "t (s)", "phase")
	for _, u := range res.UEs {
		fmt.Printf("  MCS%-2d", u.MCS)
	}
	fmt.Println("  (Mb/s)")

	phaseAt := func(t time.Duration) string {
		name := res.Phases[0].Scheduler
		for _, p := range res.Phases {
			if t > p.Start {
				name = p.Scheduler
			}
		}
		return name
	}
	for i := range res.UEs[0].Series {
		t := res.UEs[0].Series[i].Time
		fmt.Printf("%-8.1f %-8s", t.Seconds(), phaseAt(t))
		for _, u := range res.UEs {
			fmt.Printf("  %5.1f", u.Series[i].Bps/1e6)
		}
		fmt.Println()
	}
}

// Harsh radio: the extension features working together under realistic
// radio conditions. Three tenants share a capacity-limited cell with
// fading channels and HARQ losses; admission control turns away an
// overcommitting fourth tenant; every plugin draws its execution budget
// from one per-slot pool (§6B); and when one tenant uploads a buggy
// scheduler mid-run, the fault-tolerance path (fallback + quarantine)
// keeps the cell serving.
//
//	go run ./examples/harsh-radio
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"waran/internal/core"
	"waran/internal/metrics"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/sched"
	"waran/internal/slicing"
	"waran/internal/wabi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		return err
	}
	// Admission control: the cell only signs SLAs it can honour.
	gnb.Slices.CapacityBps = 30e6
	gnb.Slices.OnFault = func(sliceID uint32, err error) {
		fmt.Printf("  [fault contained] slice %d: %v\n", sliceID, err)
	}

	// One shared execution budget for all plugins: ~30% of a 1 ms slot at
	// the interpreter's ~50 M instr/s.
	pool := wabi.NewBudgetPool(100_000)

	type tenant struct {
		id     uint32
		name   string
		sched  string
		target float64
		weight float64
	}
	tenants := []tenant{
		{1, "eMBB-Co", "pf", 14e6, 3},
		{2, "IoT-Net", "rr", 6e6, 1},
		{3, "Gamer-X", "mt", 9e6, 2},
	}
	for _, tn := range tenants {
		ps, err := core.NewPluginScheduler(tn.sched, wabi.Policy{Fuel: 1})
		if err != nil {
			return err
		}
		if _, err := gnb.Slices.AddSlice(tn.id, tn.name, tn.target, ps, nil); err != nil {
			return err
		}
		if err := pool.Register(tn.name, ps.Plugin(), tn.weight); err != nil {
			return err
		}
		fmt.Printf("admitted %-8s (%s plugin, %.0f Mb/s SLA, budget weight %.0f)\n",
			tn.name, tn.sched, tn.target/1e6, tn.weight)
	}

	// A fourth tenant would overcommit the 30 Mb/s cell: refused.
	overcommit, err := core.NewPluginScheduler("rr", wabi.Policy{})
	if err != nil {
		return err
	}
	if _, err := gnb.Slices.AddSlice(4, "TooMuch", 5e6, overcommit, nil); errors.Is(err, slicing.ErrAdmissionDenied) {
		fmt.Printf("refused  TooMuch: %v\n", err)
	} else if err == nil {
		return fmt.Errorf("admission control failed to refuse overcommit")
	}

	// UEs with fading channels and HARQ loss.
	ueID := uint32(1)
	for _, tn := range tenants {
		for k := 0; k < 3; k++ {
			ue := ran.NewUE(ueID, tn.id, 20)
			ue.Traffic = ran.NewCBR(1.3 * tn.target / 3)
			ue.Channel = ran.NewFadingChannel(6, 14, 2*time.Second,
				float64(ueID), gnb.Cell.SlotDuration)
			ue.HARQ = ran.NewHARQ(int64(ueID))
			if err := gnb.AttachUE(ue); err != nil {
				return err
			}
			ueID++
		}
	}

	meters := map[uint32]*metrics.RateMeter{}
	for _, tn := range tenants {
		meters[tn.id] = metrics.NewRateMeter(gnb.Cell.SlotDuration, time.Second)
	}

	const totalSlots = 12_000 // 12 s
	fmt.Printf("\nrunning %d slots with fading + HARQ...\n", totalSlots)
	for slot := 0; slot < totalSlots; slot++ {
		if slot == totalSlots/2 {
			// Gamer-X ships a broken scheduler update mid-run.
			bad, err := wabi.CompileWAT(plugins.NullDerefWAT)
			if err != nil {
				return err
			}
			p, err := wabi.NewPlugin(bad, wabi.Policy{Fuel: 1_000_000}, wabi.Env{})
			if err != nil {
				return err
			}
			ps, err := sched.NewPluginScheduler("gamer-v2-broken", p, nil)
			if err != nil {
				return err
			}
			if err := gnb.Slices.HotSwap(3, ps); err != nil {
				return err
			}
			fmt.Printf("\nslot %d: Gamer-X hot-swapped in a broken scheduler...\n", slot)
		}
		pool.BeginSlot()
		r := gnb.Step()
		pool.EndSlot()
		for id, ss := range r.PerSlice {
			meters[id].AddSlot(ss.Bits)
		}
	}

	fmt.Printf("\n%-8s %10s %10s %12s %12s %s\n",
		"tenant", "SLA Mb/s", "mean Mb/s", "faults", "fallbacks", "state")
	for _, tn := range tenants {
		s, _ := gnb.Slices.Slice(tn.id)
		st := s.Stats()
		state := "healthy"
		if st.Quarantined {
			state = "quarantined (fallback active)"
		}
		fmt.Printf("%-8s %10.1f %10.1f %12d %12d %s\n",
			tn.name, tn.target/1e6, meters[tn.id].MeanBpsAfter(time.Second)/1e6,
			st.TotalFaults, st.FallbackSlots, state)
	}

	var blerSum float64
	var blerN int
	for _, ue := range gnb.UEs() {
		if ue.HARQ != nil && ue.HARQ.Transmissions > 0 {
			blerSum += ue.HARQ.BLERObserved()
			blerN++
		}
	}
	if blerN > 0 {
		fmt.Printf("\nobserved BLER across UEs: %.1f%% (HARQ retransmissions kept goodput flowing)\n",
			100*blerSum/float64(blerN))
	}
	return nil
}

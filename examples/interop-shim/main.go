// Interop shim: the paper's introduction example made concrete. Vendor A's
// DU emits control frames with 8-bit power fields; vendor B's RU expects
// 12-bit fields. Neither stack can be modified — both are closed firmware.
// The system integrator ships a Wasm communication plugin that transcodes
// frames in flight, exactly the WA-RAN answer to O-RAN's interoperability
// gap (§3B).
//
//	go run ./examples/interop-shim
package main

import (
	"fmt"
	"log"

	"waran/internal/plugins"
	"waran/internal/wabi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The integrator uploads the shim plugin; the RAN host sandboxes it.
	mod, err := wabi.CompileWAT(plugins.Widen8To12CommWAT)
	if err != nil {
		return err
	}
	shim, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 10_000_000}, wabi.Env{})
	if err != nil {
		return err
	}

	// Vendor A's frame: four 8-bit radio power levels.
	vendorA := []byte{0x00, 0x40, 0x80, 0xFF}
	fmt.Printf("vendor A frame (8-bit fields):  %x\n", vendorA)

	// Shim "encode": widen each 8-bit field to the 12-bit format vendor B
	// parses (value << 4, carried little-endian in 16 bits).
	vendorB, err := shim.Call("encode", vendorA)
	if err != nil {
		return err
	}
	fmt.Printf("vendor B frame (12-bit fields): %x\n", vendorB)
	for i := 0; i < len(vendorB); i += 2 {
		v12 := uint16(vendorB[i]) | uint16(vendorB[i+1])<<8
		fmt.Printf("  field %d: 0x%02X -> 0x%03X\n", i/2, vendorA[i/2], v12)
	}

	// And back: vendor B's replies narrow to vendor A's format.
	back, err := shim.Call("decode", vendorB)
	if err != nil {
		return err
	}
	fmt.Printf("narrowed back for vendor A:     %x\n", back)
	if string(back) != string(vendorA) {
		return fmt.Errorf("round trip mismatch")
	}

	// Malformed vendor-B frames are rejected inside the sandbox, not by
	// crashing the host.
	if _, err := shim.Call("decode", []byte{0x01}); err != nil {
		fmt.Printf("malformed frame rejected safely: %v\n", err)
	}

	fmt.Println("\nboth vendors interoperate; neither shipped a firmware change")
	return nil
}

// Quickstart: load an MVNO scheduler written in WebAssembly, hand it one
// slot's scheduling request, and print its decision.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"waran/internal/plugins"
	"waran/internal/sched"
	"waran/internal/wabi"
)

func main() {
	// 1. Compile the proportional-fair scheduler plugin (shipped as WAT
	//    source; any toolchain producing wasm bytecode works the same way).
	mod, err := plugins.CompileScheduler("pf")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Instantiate it in a sandbox: 16 MiB memory cap, 10M-instruction
	//    fuel budget per call.
	plugin, err := wabi.NewPlugin(mod, wabi.Policy{
		MaxMemoryPages: 256,
		Fuel:           10_000_000,
	}, wabi.Env{})
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := sched.NewPluginScheduler("pf", plugin, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build one slot's request: 52 PRBs to divide among three UEs with
	//    different channels, queues and history.
	req := &sched.Request{
		SliceID:   1,
		Slot:      42,
		PRBBudget: 52,
		UEs: []sched.UEInfo{
			{ID: 1, MCS: 28, BitsPerPRB: 802, BufferBytes: 20000, AvgTputBps: 18e6},
			{ID: 2, MCS: 24, BitsPerPRB: 653, BufferBytes: 20000, AvgTputBps: 9e6},
			{ID: 3, MCS: 20, BitsPerPRB: 479, BufferBytes: 20000, AvgTputBps: 1e6},
		},
	}

	// 4. The request crosses the sandbox boundary, the plugin decides, and
	//    the validated decision comes back.
	resp, err := scheduler.Schedule(req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plugin %q divided %d PRBs (slot %d):\n", scheduler.Name(), req.PRBBudget, req.Slot)
	for _, a := range resp.Allocs {
		fmt.Printf("  UE %d <- %2d PRBs\n", a.UEID, a.PRBs)
	}
	fmt.Printf("(PF prioritizes UE 3: lowest long-term throughput wins first)\n")
	fmt.Printf("plugin call took %v inside the sandbox\n", scheduler.Stats().LastTime)
}

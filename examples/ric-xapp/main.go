// RIC + xApps: the paper's §4B design running end to end in one process
// over real loopback TCP. A gNB's E2 agent streams KPM indications through
// a communication plugin that adapts vendor frame formats (the 8-bit to
// 12-bit example from the paper's introduction); the near-RT RIC hosts two
// Wasm xApps — traffic steering and slice SLA assurance — whose control
// actions flow back and reshape the live gNB.
//
//	go run ./examples/ric-xapp
package main

import (
	"fmt"
	"log"
	"time"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/ric"
	"waran/internal/wabi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newShimCodec() (e2.Codec, error) {
	return ric.NewPluginCodecWAT("widen8to12", plugins.Widen8To12CommWAT, e2.BinaryCodec{})
}

func run() error {
	// --- gNB side -------------------------------------------------------
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		return err
	}
	pf, err := core.NewPluginScheduler("pf", wabi.Policy{})
	if err != nil {
		return err
	}
	slice, err := gnb.Slices.AddSlice(1, "consumer", 25e6, pf, nil)
	if err != nil {
		return err
	}
	// UE 3 sits at the MCS floor: the steering xApp will hand it over.
	for i, mcs := range []int{26, 22, 2} {
		ue := ran.NewUE(uint32(i+1), 1, mcs)
		ue.Traffic = ran.NewCBR(8e6)
		if err := gnb.AttachUE(ue); err != nil {
			return err
		}
	}

	// --- RIC side ---------------------------------------------------------
	r, err := ric.New(ric.Config{
		ReportPeriodMs: 25,
		OnLog:          func(xapp, msg string) { fmt.Printf("  [xApp %s] %s\n", xapp, msg) },
	})
	if err != nil {
		return err
	}
	for name, src := range map[string]string{
		"steer": plugins.TrafficSteerXAppWAT,
		"sla":   plugins.SLAAssureXAppWAT,
	} {
		if _, err := r.AddXAppWAT(name, src, wabi.Policy{}); err != nil {
			return err
		}
		fmt.Printf("installed xApp %q as a Wasm plugin\n", name)
	}

	ricCodec, err := newShimCodec()
	if err != nil {
		return err
	}
	lis, err := e2.Listen("127.0.0.1:0", ricCodec)
	if err != nil {
		return err
	}
	defer lis.Close()
	fmt.Printf("RIC listening on %s (wire format adapted by communication plugin)\n\n", lis.Addr())

	stop := make(chan struct{})
	ricDone := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			ricDone <- err
			return
		}
		ricDone <- r.ServeConn(conn, stop)
	}()

	// --- E2 association ---------------------------------------------------
	gnbCodec, err := newShimCodec()
	if err != nil {
		return err
	}
	conn, err := e2.Dial(lis.Addr().String(), gnbCodec)
	if err != nil {
		return err
	}
	agent, err := ric.NewAgent(conn, gnb, ric.AgentConfig{Cell: 1})
	if err != nil {
		return err
	}
	agentDone, err := agent.Start()
	if err != nil {
		return err
	}
	fmt.Println("gNB E2 agent associated; driving 4000 slots (4 s)...")

	weightBefore := slice.Weight()
	for slot := 0; slot < 4000; slot++ {
		gnb.Step()
		if err := agent.Tick(uint64(slot)); err != nil {
			return err
		}
		if slot%500 == 0 {
			time.Sleep(2 * time.Millisecond) // let control round trips land
		}
	}
	time.Sleep(50 * time.Millisecond)

	// --- outcome ------------------------------------------------------------
	fmt.Println()
	_, ue3 := gnb.UE(3)
	fmt.Printf("UE 3 still attached: %v (steering xApp hands over MCS-floor UEs)\n", ue3)
	fmt.Printf("slice weight: %.1f -> %.1f (SLA xApp boosts under-target slices)\n",
		weightBefore, slice.Weight())
	ind, ok, fail := agent.Counters()
	fmt.Printf("E2 agent: %d indications sent, %d controls applied, %d refused\n", ind, ok, fail)
	inds, controls := r.Counters()
	fmt.Printf("RIC: %d indications processed, %d control actions emitted\n", inds, controls)

	close(stop)
	conn.Close()
	<-agentDone
	return nil
}

// MVNO slicing: the paper's Fig. 5a scenario. Three MVNOs rent slices of
// one gNB, each bringing its own scheduling policy as a Wasm plugin:
// an eMBB operator using max-throughput, an IoT operator using round-robin,
// and a consumer operator using proportional fair, with contracted rates of
// 3, 12 and 15 Mb/s. All three co-exist and reach their targets.
//
//	go run ./examples/mvno-slicing
package main

import (
	"fmt"
	"log"
	"time"

	"waran/internal/core"
)

func main() {
	specs := []core.MVNOSpec{
		{ID: 1, Name: "eMBB-Co", Scheduler: "mt", TargetBps: 3e6, NumUEs: 3},
		{ID: 2, Name: "IoT-Net", Scheduler: "rr", TargetBps: 12e6, NumUEs: 3},
		{ID: 3, Name: "FairTel", Scheduler: "pf", TargetBps: 15e6, NumUEs: 3},
	}
	const duration = 10 * time.Second

	fmt.Printf("running %v of sliced gNB (10 MHz, 52 PRB, 1 ms slots)...\n\n", duration)
	res, err := core.RunFig5a(specs, duration)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-18s %12s %12s\n", "MVNO", "intra-slice sched", "target Mb/s", "achieved")
	for _, m := range res.MVNOs {
		fmt.Printf("%-10s %-18s %12.2f %12.2f\n",
			m.Spec.Name, "wasm:"+m.Spec.Scheduler, m.TargetBps/1e6, m.MeanBps/1e6)
	}

	fmt.Println("\nper-MVNO bitrate over time (Mb/s):")
	fmt.Printf("%-8s", "t (s)")
	for _, m := range res.MVNOs {
		fmt.Printf("%12s", m.Spec.Name)
	}
	fmt.Println()
	for i := range res.MVNOs[0].Series {
		fmt.Printf("%-8.1f", res.MVNOs[0].Series[i].Time.Seconds())
		for _, m := range res.MVNOs {
			fmt.Printf("%12.2f", m.Series[i].Bps/1e6)
		}
		fmt.Println()
	}
}

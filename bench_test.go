// Benchmark harness regenerating the paper's evaluation (§5, Fig. 5a-5d)
// plus the ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure mapping:
//
//	Fig. 5a -> BenchmarkFig5aCoexistence   (per-slot cost of the 3-MVNO gNB)
//	Fig. 5b -> BenchmarkFig5bLiveSwap      (cost of a hot scheduler swap)
//	Fig. 5c -> BenchmarkFig5cMemory        (leaky plugin slot under a cap)
//	Fig. 5d -> BenchmarkFig5dExecTime      (plugin schedule incl. serialization;
//	                                        ns/op vs the 1 ms slot deadline)
//
// cmd/waranbench prints the same experiments as the paper's tables/series.
package waran_test

import (
	"fmt"
	"testing"

	"waran/internal/core"
	"waran/internal/e2"
	"waran/internal/plugins"
	"waran/internal/ran"
	"waran/internal/ric"
	"waran/internal/sched"
	"waran/internal/wabi"
	"waran/internal/wasm"
	"waran/internal/wat"
)

// buildFig5aGNB assembles the 3-MVNO gNB of Fig. 5a.
func buildFig5aGNB(b *testing.B) *core.GNB {
	b.Helper()
	gnb, err := core.NewGNB(ran.CellConfig{})
	if err != nil {
		b.Fatal(err)
	}
	specs := core.DefaultFig5aSpecs()
	ueID := uint32(1)
	for _, sp := range specs {
		plugin, err := core.NewPluginScheduler(sp.Scheduler, wabi.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gnb.Slices.AddSlice(sp.ID, sp.Name, sp.TargetBps, plugin, nil); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < sp.NumUEs; k++ {
			ue := ran.NewUE(ueID, sp.ID, 22+2*k)
			ue.Traffic = ran.NewCBR(1.4 * sp.TargetBps / float64(sp.NumUEs))
			if err := gnb.AttachUE(ue); err != nil {
				b.Fatal(err)
			}
			ueID++
		}
	}
	return gnb
}

// BenchmarkFig5aCoexistence measures one full MAC slot of the Fig. 5a gNB:
// traffic + channel step, inter-slice division, three Wasm plugin
// intra-slice decisions, and grant application.
func BenchmarkFig5aCoexistence(b *testing.B) {
	gnb := buildFig5aGNB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gnb.Step()
	}
}

// BenchmarkFig5bLiveSwap measures the on-the-fly scheduler replacement the
// paper performs mid-run: compile-cached plugin instantiation plus the
// atomic hot swap, i.e. the control-plane cost of changing an MVNO policy.
func BenchmarkFig5bLiveSwap(b *testing.B) {
	gnb := buildFig5aGNB(b)
	names := []string{"pf", "rr", "mt"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plugin, err := core.NewPluginScheduler(names[i%len(names)], wabi.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		if err := gnb.Slices.HotSwap(1, plugin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5cMemory measures one slot of the leaky scheduler plugin
// running against a 16 MiB sandbox cap, the Fig. 5c configuration; the
// sandbox keeps the gNB's footprint flat no matter how long it runs.
func BenchmarkFig5cMemory(b *testing.B) {
	mod, err := wabi.CompileWAT(plugins.LeakWAT)
	if err != nil {
		b.Fatal(err)
	}
	p, err := wabi.NewPlugin(mod, wabi.Policy{MaxMemoryPages: 256}, wabi.Env{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Call("schedule", nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if p.MemoryBytes() > 256*wasm.PageSize {
		b.Fatalf("sandbox exceeded its cap: %d bytes", p.MemoryBytes())
	}
}

// BenchmarkFig5dExecTime is the paper's headline timing experiment: plugin
// execution time including host-side serialization, for each scheduler and
// UE count. Compare ns/op with the 1,000,000 ns slot deadline.
func BenchmarkFig5dExecTime(b *testing.B) {
	for _, name := range []string{"mt", "pf", "rr"} {
		for _, nUE := range []int{1, 10, 20} {
			b.Run(fmt.Sprintf("%s/%dUE", name, nUE), func(b *testing.B) {
				ps, err := core.NewPluginScheduler(name, wabi.Policy{})
				if err != nil {
					b.Fatal(err)
				}
				req := benchRequest(nUE)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					req.Slot = uint64(i)
					if _, err := ps.Schedule(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchRequest(nUE int) *sched.Request {
	cell := ran.CellConfig{}.WithDefaults()
	req := &sched.Request{SliceID: 1, PRBBudget: uint32(cell.PRBs)}
	for i := 0; i < nUE; i++ {
		mcs := 20 + (i % 9)
		req.UEs = append(req.UEs, sched.UEInfo{
			ID:          uint32(i + 1),
			MCS:         int32(mcs),
			BitsPerPRB:  uint32(cell.BitsPerPRB(mcs)),
			BufferBytes: uint32(50_000 + 1000*i),
			AvgTputBps:  float64(1_000_000 * (i + 1)),
		})
	}
	return req
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationNativeVsPlugin quantifies the sandbox tax: the identical
// PF policy as native Go versus as a Wasm plugin.
func BenchmarkAblationNativeVsPlugin(b *testing.B) {
	req := benchRequest(10)
	b.Run("native", func(b *testing.B) {
		s := sched.ProportionalFair{}
		for i := 0; i < b.N; i++ {
			req.Slot = uint64(i)
			if _, err := s.Schedule(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plugin", func(b *testing.B) {
		ps, err := core.NewPluginScheduler("pf", wabi.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.Slot = uint64(i)
			if _, err := ps.Schedule(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationABICodec compares the compact binary scheduling ABI with
// a JSON ABI on the host side (encode request + decode response), showing
// why the fixed layout is the default inside the 1 ms budget.
func BenchmarkAblationABICodec(b *testing.B) {
	req := benchRequest(20)
	resp := &sched.Response{Allocs: []sched.Allocation{{UEID: 1, PRBs: 20}, {UEID: 2, PRBs: 32}}}
	b.Run("binary", func(b *testing.B) {
		codec := sched.BinaryCodec{}
		wire := codec.EncodeResponse(resp)
		for i := 0; i < b.N; i++ {
			in := codec.EncodeRequest(req)
			if _, err := codec.DecodeResponse(wire); err != nil {
				b.Fatal(err)
			}
			_ = in
		}
	})
	b.Run("json", func(b *testing.B) {
		codec := sched.JSONCodec{}
		wire := codec.EncodeResponse(resp)
		for i := 0; i < b.N; i++ {
			in := codec.EncodeRequest(req)
			if _, err := codec.DecodeResponse(wire); err != nil {
				b.Fatal(err)
			}
			_ = in
		}
	})
}

// BenchmarkAblationInstanceReuse compares reusing one plugin instance per
// slice (default) with re-instantiating the sandbox on every call (maximum
// isolation).
func BenchmarkAblationInstanceReuse(b *testing.B) {
	req := benchRequest(10)
	for _, mode := range []struct {
		name  string
		fresh bool
	}{{"reuse", false}, {"fresh", true}} {
		b.Run(mode.name, func(b *testing.B) {
			mod, err := plugins.CompileScheduler("mt")
			if err != nil {
				b.Fatal(err)
			}
			p, err := wabi.NewPlugin(mod, wabi.Policy{FreshInstance: mode.fresh, Fuel: 10_000_000}, wabi.Env{})
			if err != nil {
				b.Fatal(err)
			}
			ps, err := sched.NewPluginScheduler("mt", p, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.Slot = uint64(i)
				if _, err := ps.Schedule(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFuelOverhead measures the cost of instruction metering,
// the mechanism that converts infinite loops into deterministic traps.
func BenchmarkAblationFuelOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		fuel int64
	}{{"metered", 100_000_000}, {"unmetered", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			mod, err := plugins.CompileScheduler("pf")
			if err != nil {
				b.Fatal(err)
			}
			p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: mode.fuel}, wabi.Env{})
			if err != nil {
				b.Fatal(err)
			}
			ps, err := sched.NewPluginScheduler("pf", p, nil)
			if err != nil {
				b.Fatal(err)
			}
			req := benchRequest(10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.Slot = uint64(i)
				if _, err := ps.Schedule(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Runtime microbenchmarks.

// BenchmarkWasmInterpFib measures raw interpreter throughput on a
// call-heavy recursive workload.
func BenchmarkWasmInterpFib(b *testing.B) {
	src := `(module (func $fib (export "fib") (param $n i32) (result i32)
	  (if (result i32) (i32.lt_s (local.get $n) (i32.const 2))
	    (then (local.get $n))
	    (else (i32.add
	      (call $fib (i32.sub (local.get $n) (i32.const 1)))
	      (call $fib (i32.sub (local.get $n) (i32.const 2))))))))`
	in := instantiate(b, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("fib", 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWasmMemoryOps measures bounds-checked linear memory access.
func BenchmarkWasmMemoryOps(b *testing.B) {
	src := `(module (memory (export "memory") 1)
	  (func (export "churn") (param $n i32) (result i32)
	    (local $i i32) (local $s i32)
	    (block $done (loop $top
	      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
	      (i32.store (i32.and (i32.mul (local.get $i) (i32.const 13)) (i32.const 0xFFFC)) (local.get $i))
	      (local.set $s (i32.add (local.get $s)
	        (i32.load (i32.and (i32.mul (local.get $i) (i32.const 7)) (i32.const 0xFFFC)))))
	      (local.set $i (i32.add (local.get $i) (i32.const 1)))
	      (br $top)))
	    (local.get $s)))`
	in := instantiate(b, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("churn", 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWatCompile measures the toolchain: WAT parse + assemble +
// validate + flatten for the PF scheduler plugin.
func BenchmarkWatCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := wat.Compile(plugins.ProportionalFairWAT)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wasm.Compile(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWasmDecode measures binary decode + validate + flatten of the
// encoded PF plugin, i.e. the plugin upload path.
func BenchmarkWasmDecode(b *testing.B) {
	bin, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wabi.CompileWasm(bin); err != nil {
			b.Fatal(err)
		}
	}
}

func instantiate(b *testing.B, src string) *wasm.Instance {
	b.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// ---------------------------------------------------------------------------
// E2 / RIC benchmarks.

// BenchmarkE2Codecs compares the operator codec choices on a realistic
// 20-UE indication.
func BenchmarkE2Codecs(b *testing.B) {
	msg := benchIndication(20)
	for _, codec := range []e2.Codec{e2.BinaryCodec{}, e2.VarintCodec{}, e2.JSONCodec{}} {
		b.Run(codec.Name(), func(b *testing.B) {
			wire, err := codec.Encode(msg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(wire)))
			for i := 0; i < b.N; i++ {
				w, err := codec.Encode(msg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := codec.Decode(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2SealedCodec measures the AES-GCM sealing option.
func BenchmarkE2SealedCodec(b *testing.B) {
	sealed, err := e2.NewSealedCodec(e2.BinaryCodec{}, "operator-secret")
	if err != nil {
		b.Fatal(err)
	}
	msg := benchIndication(20)
	for i := 0; i < b.N; i++ {
		w, err := sealed.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sealed.Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2PluginCodec measures the communication-plugin wrapping
// overhead (the widen-8-to-12 vendor shim) on the same indication.
func BenchmarkE2PluginCodec(b *testing.B) {
	codec, err := ric.NewPluginCodecWAT("widen8to12", plugins.Widen8To12CommWAT, e2.BinaryCodec{})
	if err != nil {
		b.Fatal(err)
	}
	msg := benchIndication(20)
	for i := 0; i < b.N; i++ {
		w, err := codec.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXAppDispatch measures a full RIC indication dispatch across both
// evaluation xApps.
func BenchmarkXAppDispatch(b *testing.B) {
	r := ric.MustNew(ric.Config{})
	if _, err := r.AddXAppWAT("steer", plugins.TrafficSteerXAppWAT, wabi.Policy{}); err != nil {
		b.Fatal(err)
	}
	if _, err := r.AddXAppWAT("sla", plugins.SLAAssureXAppWAT, wabi.Policy{}); err != nil {
		b.Fatal(err)
	}
	ind := benchIndication(20).Indication
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.HandleIndication(ind)
	}
}

func benchIndication(nUE int) *e2.Message {
	ind := &e2.Indication{Slot: 12345, Cell: 7}
	for i := 0; i < nUE; i++ {
		ind.UEs = append(ind.UEs, e2.UEMeasurement{
			UEID: uint32(i + 1), SliceID: uint32(i%3 + 1), MCS: int32(10 + i%19),
			BufferBytes: 40000, TputBps: 4e6,
		})
	}
	for s := 1; s <= 3; s++ {
		ind.Slices = append(ind.Slices, e2.SliceMeasurement{
			SliceID: uint32(s), TargetBps: 10e6, ServedBps: 8e6, UsedPRBs: 17,
		})
	}
	return &e2.Message{Type: e2.TypeIndication, RANFunction: e2.RANFunctionKPM, Indication: ind}
}

// ---------------------------------------------------------------------------
// Extension benchmarks (features beyond the paper's prototype).

// BenchmarkBytecodeUploadPath measures the plugin upload gauntlet — the
// cost of the paper's Fig. 1 "push software into the RAN" control action.
// "coldcache" pays decode + validate + flatten + instantiate + hot swap on
// every upload (the pre-cache behaviour); "cached" resolves the bytecode
// through the content-addressed module cache, leaving only the hash lookup,
// instantiation and swap — the steady-state cost of fanning one plugin
// across a fleet of cells.
func BenchmarkBytecodeUploadPath(b *testing.B) {
	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"coldcache", "cached"} {
		b.Run(mode, func(b *testing.B) {
			gnb := buildFig5aGNB(b)
			if mode == "coldcache" {
				gnb.Modules = nil
			}
			b.SetBytes(int64(len(blob)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := gnb.Apply(&e2.ControlRequest{
					Action: e2.ActionUploadScheduler, SliceID: 1, Text: "v", Blob: blob,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Multi-cell slot engine.

// buildCellGroup assembles a group of Fig. 5a-shaped cells whose slices
// share pool-backed plugin schedulers, so concurrent cells fan intra-slice
// decisions across parallel sandboxes of one compiled module. abi selects
// the plugin call path for every installed scheduler.
func buildCellGroup(b *testing.B, cells, par int, abi sched.ABIMode) *core.CellGroup {
	b.Helper()
	cg, err := core.NewCellGroup(ran.CellConfig{}, core.CellGroupConfig{Cells: cells, Parallelism: par})
	if err != nil {
		b.Fatal(err)
	}
	cg.PluginABI = abi
	specs := core.DefaultFig5aSpecs()
	for c := 0; c < cells; c++ {
		gnb := cg.Cell(c)
		ueID := uint32(1)
		for _, sp := range specs {
			if _, err := gnb.Slices.AddSlice(sp.ID, sp.Name, sp.TargetBps, sched.RoundRobin{}, nil); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < sp.NumUEs; k++ {
				ue := ran.NewUE(ueID, sp.ID, 22+2*k)
				ue.Traffic = ran.NewCBR(1.4 * sp.TargetBps / float64(sp.NumUEs))
				if err := gnb.AttachUE(ue); err != nil {
					b.Fatal(err)
				}
				ueID++
			}
		}
	}
	for _, sp := range specs {
		if _, err := cg.InstallPooledScheduler(sp.ID, sp.Scheduler, wabi.Policy{}, cells); err != nil {
			b.Fatal(err)
		}
	}
	return cg
}

// BenchmarkMultiCellSlots measures one group slot (all cells stepped) for
// an 8-cell deployment at parallelism 1 vs GOMAXPROCS, against the
// single-cell baseline, for both plugin call paths. The scaling claim: at
// GOMAXPROCS >= 4 the 8-cell group steps in well under 8x the single-cell
// ns/op; the codec-vs-zerocopy split isolates the serialization share of
// the slot from the scheduling logic itself.
func BenchmarkMultiCellSlots(b *testing.B) {
	b.Run("1cell", func(b *testing.B) {
		gnb := buildFig5aGNB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gnb.Step()
		}
	})
	for _, cfg := range []struct {
		name string
		par  int
		abi  sched.ABIMode
	}{
		{"8cell/par=1/codec", 1, sched.ABICodec},
		{"8cell/par=1/zerocopy", 1, sched.ABIZeroCopy},
		{"8cell/par=max/codec", 0, sched.ABICodec}, // par 0 = GOMAXPROCS
		{"8cell/par=max/zerocopy", 0, sched.ABIZeroCopy},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			cg := buildCellGroup(b, 8, cfg.par, cfg.abi)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cg.StepAll()
			}
			b.StopTimer()
			st := cg.WatchdogStats()
			var overruns uint64
			for _, s := range st {
				overruns += s.Overruns
			}
			b.ReportMetric(float64(overruns)/float64(b.N*8), "overruns/slot")
		})
	}
}

// BenchmarkABIPath isolates the host-side call path itself: one plugin
// scheduler forced onto the serializing codec vs the zero-copy regions, at
// realistic UE counts. "zerocopy" pays the delta diff against the shadow
// buffer; "zerocopy-cold" mutates every record each slot so nothing is
// skippable, bounding the worst case.
func BenchmarkABIPath(b *testing.B) {
	for _, mode := range []struct {
		name string
		abi  sched.ABIMode
		cold bool
	}{
		{"codec", sched.ABICodec, false},
		{"zerocopy", sched.ABIZeroCopy, false},
		{"zerocopy-cold", sched.ABIZeroCopy, true},
	} {
		for _, nUE := range []int{10, 64, 256} {
			b.Run(fmt.Sprintf("%s/%dUE", mode.name, nUE), func(b *testing.B) {
				ps, err := core.NewPluginScheduler("pf", wabi.Policy{})
				if err != nil {
					b.Fatal(err)
				}
				if err := ps.SetABIMode(mode.abi); err != nil {
					b.Fatal(err)
				}
				req := benchRequest(nUE)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					req.Slot = uint64(i)
					if mode.cold {
						for u := range req.UEs {
							req.UEs[u].BufferBytes = uint32(50_000 + i + u)
						}
					}
					if _, err := ps.Schedule(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMultiCellHotSwap measures fanning one plugin upload across a
// 64-cell group through the shared module cache: one compile, 64 swaps.
func BenchmarkMultiCellHotSwap(b *testing.B) {
	blob, err := wat.CompileToBinary(plugins.ProportionalFairWAT)
	if err != nil {
		b.Fatal(err)
	}
	cg, err := core.NewCellGroup(ran.CellConfig{}, core.CellGroupConfig{Cells: 64, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := cg.Cell(i).Slices.AddSlice(1, "t", 10e6, sched.RoundRobin{}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cg.UploadSchedulerAll(1, "pf", blob, wabi.Policy{}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetPoolBeginSlot measures the per-slot cost of the §6B joint
// resource manager with 8 registered plugins.
func BenchmarkBudgetPoolBeginSlot(b *testing.B) {
	mod, err := plugins.CompileScheduler("mt")
	if err != nil {
		b.Fatal(err)
	}
	pool := wabi.NewBudgetPool(10_000_000)
	for i := 0; i < 8; i++ {
		p, err := wabi.NewPlugin(mod, wabi.Policy{Fuel: 1}, wabi.Env{})
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Register(fmt.Sprintf("p%d", i), p, float64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.BeginSlot()
		pool.EndSlot()
	}
}

// BenchmarkDisassemble measures the tooling path used when inspecting
// third-party plugin uploads.
func BenchmarkDisassemble(b *testing.B) {
	bin, err := wat.CompileToBinary(plugins.RoundRobinWAT)
	if err != nil {
		b.Fatal(err)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wasm.Disassemble(m)
	}
}

// ---------------------------------------------------------------------------
// Tiered execution benchmarks (BENCH_tier.json).

// tierInstantiate builds a metered instance pinned to one execution tier,
// with enough fuel for a whole benchmark run.
func tierInstantiate(b *testing.B, src string, tier wasm.Tier) *wasm.Instance {
	b.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := wasm.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	in, err := cm.Instantiate(nil, wasm.Config{MeterFuel: true, Tier: tier})
	if err != nil {
		b.Fatal(err)
	}
	in.SetFuel(1 << 60)
	return in
}

var benchTiers = []struct {
	name string
	tier wasm.Tier
}{
	{"interp", wasm.TierInterp},
	{"fused", wasm.TierFused},
	{"closure", wasm.TierClosure},
}

// BenchmarkWasmTierFib measures the call-heavy recursive workload on each
// tier under fuel metering — the dispatch-loop overhead the closure tier is
// built to remove.
func BenchmarkWasmTierFib(b *testing.B) {
	src := `(module (func $fib (export "fib") (param $n i32) (result i32)
	  (if (result i32) (i32.lt_s (local.get $n) (i32.const 2))
	    (then (local.get $n))
	    (else (i32.add
	      (call $fib (i32.sub (local.get $n) (i32.const 1)))
	      (call $fib (i32.sub (local.get $n) (i32.const 2))))))))`
	for _, tc := range benchTiers {
		b.Run(tc.name, func(b *testing.B) {
			in := tierInstantiate(b, src, tc.tier)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Call("fib", 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWasmTierMemLoop measures the store/load/branch loop that the
// superinstruction pass fuses: get+const+add/store windows, load+compare
// back-edges.
func BenchmarkWasmTierMemLoop(b *testing.B) {
	src := `(module (memory (export "memory") 1)
	  (func (export "churn") (param $n i32) (result i32)
	    (local $i i32) (local $s i32)
	    (block $done (loop $top
	      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
	      (i32.store (i32.and (i32.mul (local.get $i) (i32.const 13)) (i32.const 0xFFFC)) (local.get $i))
	      (local.set $s (i32.add (local.get $s)
	        (i32.load (i32.and (i32.mul (local.get $i) (i32.const 7)) (i32.const 0xFFFC)))))
	      (local.set $i (i32.add (local.get $i) (i32.const 1)))
	      (br $top)))
	    (local.get $s)))`
	for _, tc := range benchTiers {
		b.Run(tc.name, func(b *testing.B) {
			in := tierInstantiate(b, src, tc.tier)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Call("churn", 4096); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTierSchedule measures the full host-side scheduling call — the
// plugin-execution share of BenchmarkMultiCellSlots — with the PF guest
// pinned to each tier, over both ABI paths at a realistic UE count.
func BenchmarkTierSchedule(b *testing.B) {
	for _, mode := range []struct {
		name string
		abi  sched.ABIMode
	}{
		{"codec", sched.ABICodec},
		{"zerocopy", sched.ABIZeroCopy},
	} {
		for _, tc := range benchTiers {
			b.Run(mode.name+"/"+tc.name, func(b *testing.B) {
				ps, err := core.NewPluginScheduler("pf", wabi.Policy{Tier: tc.tier})
				if err != nil {
					b.Fatal(err)
				}
				if err := ps.SetABIMode(mode.abi); err != nil {
					b.Fatal(err)
				}
				req := benchRequest(64)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					req.Slot = uint64(i)
					if _, err := ps.Schedule(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMultiCellSlotsTier is BenchmarkMultiCellSlots with the wasm tier
// pinned: the whole-system view of what tier promotion buys one group slot.
func BenchmarkMultiCellSlotsTier(b *testing.B) {
	for _, tc := range benchTiers {
		b.Run("8cell/par=1/zerocopy/"+tc.name, func(b *testing.B) {
			cg, scheds, err := core.BuildMulticellGroupTiered(8, 1, sched.ABIZeroCopy, tc.tier, 0, wabi.Env{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cg.StepAll()
			}
			b.StopTimer()
			var ns, calls uint64
			for _, ps := range scheds {
				st := ps.Stats()
				ns += uint64(st.TotalTime.Nanoseconds())
				calls += st.Calls
			}
			if calls > 0 {
				b.ReportMetric(float64(ns)/float64(calls), "sched-ns/call")
			}
		})
	}
}

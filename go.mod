module waran

go 1.22
